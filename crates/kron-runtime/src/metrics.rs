//! Latency histograms, per-model/per-device metric registries, and the
//! snapshot/export surface: the aggregate half of the runtime's
//! observability layer (the causal half — timelines and the flight
//! recorder — lives in [`crate::trace`]).
//!
//! Everything on the hot path is preallocated and atomic: recording a
//! stage latency is one `leading_zeros` plus three relaxed atomic adds
//! into a fixed 40-bucket log2 histogram, and the per-model registry
//! reserves its slots up front so steady-state serving performs zero
//! heap allocations (proved in `serve_alloc.rs`). Reads are cold-path:
//! [`crate::Runtime::metrics_snapshot`] folds counters, stage/outcome
//! histograms, both registries, and device health into one coherent
//! [`MetricsSnapshot`] that renders to stable JSON or Prometheus text.

use crate::health::DeviceHealthReport;
use crate::runtime::RuntimeStats;
use crate::trace::{FlightRecorder, ServeEvent, ServeEventKind, StageTimings};
use kron_core::DType;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 latency buckets. Bucket 0 holds exactly 0µs; bucket
/// `i` in `1..=38` holds `[2^(i-1), 2^i - 1]`µs; bucket 39 holds
/// everything ≥ 2^38 µs.
pub(crate) const BUCKETS: usize = 40;

/// Log2 bucket index for a microsecond latency.
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` in microseconds (used as the
/// conservative percentile readout). Bucket 0 is exactly 0.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// Preallocated atomic log2 latency histogram: recording is lock-free
/// and allocation-free.
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one latency observation. Hot path: three relaxed adds.
    pub(crate) fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Copies the current bucket counts out (cold path).
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.count = self.count.load(Ordering::Relaxed);
        s.sum_us = self.sum_us.load(Ordering::Relaxed);
        s
    }
}

/// Point-in-time copy of a latency histogram with percentile readout.
///
/// Buckets are log2-spaced: bucket 0 holds exactly 0µs and bucket `i`
/// holds latencies in `[2^(i-1), 2^i - 1]`µs. [`Self::percentile`]
/// interpolates by rank within the containing bucket, so the readout
/// stays inside the bucket that actually holds the observation instead
/// of snapping to its upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per log2 bucket.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies (µs).
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Accumulates one observation into this snapshot (registry slots
    /// under a lock use plain snapshots as their accumulator).
    pub(crate) fn record(&mut self, us: u64) {
        self.buckets[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us += us;
    }

    /// The latency (µs) at percentile `p` in `(0.0, 1.0]`, interpolated
    /// by rank within the log2 bucket containing that rank: the k-th of
    /// b observations in `[lower, upper]` reads as the midpoint of the
    /// k-th of b equal sub-intervals. A lone observation reads as the
    /// bucket midpoint rather than the upper bound, so a ~1.2ms tail no
    /// longer reports as 1023µs or 2047µs depending on which side of a
    /// power of two it fell. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if seen + b >= target && b > 0 {
                let lower = if i == 0 { 0 } else { bucket_upper(i - 1) + 1 };
                let width = bucket_upper(i) - lower;
                let pos = target - seen; // 1..=b
                let off = (width as u128 * (2 * pos as u128 - 1)) / (2 * b as u128);
                return lower + off as u64;
            }
            seen += b;
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Mean observed latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The observations recorded since `earlier` was taken — bucket-wise
    /// saturating difference. Lets a bench window tails to one timed
    /// phase by diffing before/after snapshots of a shared histogram.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for i in 0..BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum_us = self.sum_us.saturating_sub(earlier.sum_us);
        out
    }
}

/// Pipeline stage a latency histogram attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Channel wait: enqueue → scheduler pickup.
    Queue,
    /// Batching wait: pickup → linger window close.
    Linger,
    /// Plan-cache resolution on the final attempt.
    Plan,
    /// Kernel execution on the final attempt.
    Exec,
    /// Result scatter: execute end → reply fill.
    Scatter,
    /// Retry cost: serve start → final attempt start.
    Retry,
    /// End-to-end: sum of all stages.
    Total,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Queue,
        Stage::Linger,
        Stage::Plan,
        Stage::Exec,
        Stage::Scatter,
        Stage::Retry,
        Stage::Total,
    ];

    /// Stable lowercase name (used as the JSON/Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Linger => "linger",
            Stage::Plan => "plan",
            Stage::Exec => "exec",
            Stage::Scatter => "scatter",
            Stage::Retry => "retry",
            Stage::Total => "total",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Queue => 0,
            Stage::Linger => 1,
            Stage::Plan => 2,
            Stage::Exec => 3,
            Stage::Scatter => 4,
            Stage::Retry => 5,
            Stage::Total => 6,
        }
    }
}

/// How a request's reply resolved, keying the per-outcome end-to-end
/// latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served successfully.
    Ok,
    /// Replied with a non-deadline error.
    Error,
    /// Shed with [`kron_core::KronError::DeadlineExceeded`].
    Shed,
    /// Served successfully inline on the submitting thread via the
    /// low-latency bypass lane (no channel hop, no linger window).
    Bypass,
}

impl Outcome {
    /// Every outcome.
    pub const ALL: [Outcome; 4] = [Outcome::Ok, Outcome::Error, Outcome::Shed, Outcome::Bypass];

    /// Stable lowercase name (used as the JSON/Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::Shed => "shed",
            Outcome::Bypass => "bypass",
        }
    }

    fn index(self) -> usize {
        match self {
            Outcome::Ok => 0,
            Outcome::Error => 1,
            Outcome::Shed => 2,
            Outcome::Bypass => 3,
        }
    }
}

/// Per-plan-key serving stats from the bounded model registry, read via
/// [`crate::Runtime::model_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Element dtype of the plan key.
    pub dtype: DType,
    /// Shape-chain hash of the plan key (matches
    /// [`crate::Model::shape_key`]).
    pub shape_key: u64,
    /// Row capacity of the plan key.
    pub capacity: usize,
    /// Requests served `Ok` under this key.
    pub serves: u64,
    /// Requests replied with an error (including sheds) under this key.
    pub errors: u64,
    /// Plan-cache hits for this key.
    pub plan_hits: u64,
    /// Plan-cache misses (builds) for this key.
    pub plan_misses: u64,
    /// End-to-end latency of requests served under this key.
    pub latency: HistogramSnapshot,
    /// True for the single spill slot that aggregates every key past the
    /// registry's bound (its key fields are zeroed).
    pub overflow: bool,
}

/// Per-device execute/fault counters and execute-latency histogram,
/// carried on each [`DeviceHealthReport`] row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceMetricsSnapshot {
    /// Sharded executes this device participated in.
    pub executes: u64,
    /// Faults attributed to this device (failures and timeouts).
    pub faults: u64,
    /// The subset of faults that were watchdog timeouts.
    pub timeouts: u64,
    /// Execute latency of batches this device participated in.
    pub exec_latency: HistogramSnapshot,
}

/// Distinct plan keys the model registry tracks exactly before spilling
/// into the shared overflow slot. Slots are reserved up front so
/// tracking a new key in steady state does not allocate.
const MODEL_SLOTS: usize = 64;

#[derive(Clone, Copy)]
struct ModelSlot {
    dtype: DType,
    shape_key: u64,
    capacity: usize,
    serves: u64,
    errors: u64,
    plan_hits: u64,
    plan_misses: u64,
    latency: HistogramSnapshot,
}

impl ModelSlot {
    fn empty() -> Self {
        ModelSlot {
            dtype: DType::F32,
            shape_key: 0,
            capacity: 0,
            serves: 0,
            errors: 0,
            plan_hits: 0,
            plan_misses: 0,
            latency: HistogramSnapshot::default(),
        }
    }

    fn used(&self) -> bool {
        self.serves + self.errors + self.plan_hits + self.plan_misses > 0
    }
}

struct ModelRegistry {
    slots: Vec<ModelSlot>,
    overflow: ModelSlot,
}

impl ModelRegistry {
    fn new() -> Self {
        ModelRegistry {
            slots: Vec::with_capacity(MODEL_SLOTS),
            overflow: ModelSlot::empty(),
        }
    }

    /// The slot for `(dtype, shape_key, capacity)`, spilling to the
    /// overflow slot past [`MODEL_SLOTS`] distinct keys. Pushing within
    /// the reserved capacity never reallocates.
    fn slot_mut(&mut self, dtype: DType, shape_key: u64, capacity: usize) -> &mut ModelSlot {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.dtype == dtype && s.shape_key == shape_key && s.capacity == capacity)
        {
            return &mut self.slots[i];
        }
        if self.slots.len() < MODEL_SLOTS {
            let mut s = ModelSlot::empty();
            s.dtype = dtype;
            s.shape_key = shape_key;
            s.capacity = capacity;
            self.slots.push(s);
            let last = self.slots.len() - 1;
            return &mut self.slots[last];
        }
        &mut self.overflow
    }
}

struct DeviceMetrics {
    executes: AtomicU64,
    faults: AtomicU64,
    timeouts: AtomicU64,
    exec_latency: LatencyHistogram,
}

/// The runtime's shared metrics plane: stage/outcome histograms, the
/// bounded per-model registry, per-device counters, and the flight
/// recorder. One `Arc<MetricsHub>` is threaded through the scheduler,
/// plan cache, device-health ledger, and fault plane.
pub(crate) struct MetricsHub {
    stages: [LatencyHistogram; 7],
    outcomes: [LatencyHistogram; 4],
    models: Mutex<ModelRegistry>,
    devices: Box<[DeviceMetrics]>,
    recorder: FlightRecorder,
}

impl MetricsHub {
    pub(crate) fn new(gpus: usize) -> Self {
        MetricsHub {
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            outcomes: std::array::from_fn(|_| LatencyHistogram::new()),
            models: Mutex::new(ModelRegistry::new()),
            devices: (0..gpus)
                .map(|_| DeviceMetrics {
                    executes: AtomicU64::new(0),
                    faults: AtomicU64::new(0),
                    timeouts: AtomicU64::new(0),
                    exec_latency: LatencyHistogram::new(),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            recorder: FlightRecorder::new(),
        }
    }

    /// Records one request's stage breakdown into the stage histograms
    /// and its end-to-end total into the outcome histogram.
    pub(crate) fn record_timings(&self, t: &StageTimings, outcome: Outcome) {
        self.stages[Stage::Queue.index()].record(t.queue_us);
        self.stages[Stage::Linger.index()].record(t.linger_us);
        self.stages[Stage::Plan.index()].record(t.plan_us);
        self.stages[Stage::Exec.index()].record(t.exec_us);
        self.stages[Stage::Scatter.index()].record(t.scatter_us);
        self.stages[Stage::Retry.index()].record(t.retry_us);
        let total = t.total_us();
        self.stages[Stage::Total.index()].record(total);
        self.outcomes[outcome.index()].record(total);
    }

    /// Folds one reply into the per-model registry.
    pub(crate) fn record_model_serve(
        &self,
        dtype: DType,
        shape_key: u64,
        capacity: usize,
        outcome: Outcome,
        total_us: u64,
    ) {
        let mut reg = self.models.lock().unwrap_or_else(|e| e.into_inner());
        let slot = reg.slot_mut(dtype, shape_key, capacity);
        match outcome {
            Outcome::Ok | Outcome::Bypass => slot.serves += 1,
            Outcome::Error | Outcome::Shed => slot.errors += 1,
        }
        slot.latency.record(total_us);
    }

    /// Folds one plan-cache lookup into the per-model registry.
    pub(crate) fn record_plan_lookup(
        &self,
        dtype: DType,
        shape_key: u64,
        capacity: usize,
        hit: bool,
    ) {
        let mut reg = self.models.lock().unwrap_or_else(|e| e.into_inner());
        let slot = reg.slot_mut(dtype, shape_key, capacity);
        if hit {
            slot.plan_hits += 1;
        } else {
            slot.plan_misses += 1;
        }
    }

    /// Records a sharded execute this device participated in.
    pub(crate) fn record_device_execute(&self, gpu: usize, exec_us: u64) {
        if let Some(d) = self.devices.get(gpu) {
            d.executes.fetch_add(1, Ordering::Relaxed);
            d.exec_latency.record(exec_us);
        }
    }

    /// Records a fault attributed to this device.
    pub(crate) fn record_device_fault(&self, gpu: usize, timeout: bool) {
        if let Some(d) = self.devices.get(gpu) {
            d.faults.fetch_add(1, Ordering::Relaxed);
            if timeout {
                d.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// One device's counters for [`DeviceHealthReport::metrics`].
    pub(crate) fn device_snapshot(&self, gpu: usize) -> DeviceMetricsSnapshot {
        match self.devices.get(gpu) {
            Some(d) => DeviceMetricsSnapshot {
                executes: d.executes.load(Ordering::Relaxed),
                faults: d.faults.load(Ordering::Relaxed),
                timeouts: d.timeouts.load(Ordering::Relaxed),
                exec_latency: d.exec_latency.snapshot(),
            },
            None => DeviceMetricsSnapshot::default(),
        }
    }

    /// Records a flight-recorder event (lock-free, allocation-free).
    pub(crate) fn event(&self, at_us: u64, kind: ServeEventKind) {
        self.recorder.record(ServeEvent { at_us, kind });
    }

    /// Drains the flight recorder (cold path).
    pub(crate) fn drain_events(&self) -> Vec<ServeEvent> {
        self.recorder.drain()
    }

    /// Snapshot of one stage histogram.
    pub(crate) fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage.index()].snapshot()
    }

    /// Snapshot of one outcome histogram.
    pub(crate) fn outcome_snapshot(&self, outcome: Outcome) -> HistogramSnapshot {
        self.outcomes[outcome.index()].snapshot()
    }

    /// Every used model-registry slot (plus the overflow aggregate if it
    /// absorbed anything), ordered by first use.
    pub(crate) fn model_stats(&self) -> Vec<ModelStats> {
        let reg = self.models.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<ModelStats> = reg
            .slots
            .iter()
            .map(|s| ModelStats {
                dtype: s.dtype,
                shape_key: s.shape_key,
                capacity: s.capacity,
                serves: s.serves,
                errors: s.errors,
                plan_hits: s.plan_hits,
                plan_misses: s.plan_misses,
                latency: s.latency,
                overflow: false,
            })
            .collect();
        if reg.overflow.used() {
            out.push(ModelStats {
                dtype: reg.overflow.dtype,
                shape_key: 0,
                capacity: 0,
                serves: reg.overflow.serves,
                errors: reg.overflow.errors,
                plan_hits: reg.overflow.plan_hits,
                plan_misses: reg.overflow.plan_misses,
                latency: reg.overflow.latency,
                overflow: true,
            });
        }
        out
    }
}

/// One coherent view of everything the runtime measures, from
/// [`crate::Runtime::metrics_snapshot`]: lifetime counters, per-stage
/// and per-outcome latency histograms, the per-model registry, and
/// per-device health + metrics. Renders to stable JSON
/// ([`Self::to_json`]) or Prometheus text ([`Self::to_prometheus`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Clock time the snapshot was taken (µs on the runtime clock).
    pub at_us: u64,
    /// Lifetime counters.
    pub stats: RuntimeStats,
    /// Per-stage latency histograms, in [`Stage::ALL`] order.
    pub stages: Vec<(Stage, HistogramSnapshot)>,
    /// Per-outcome end-to-end histograms, in [`Outcome::ALL`] order.
    pub outcomes: Vec<(Outcome, HistogramSnapshot)>,
    /// The per-model registry.
    pub models: Vec<ModelStats>,
    /// Per-device health and metrics (empty on a single-node runtime).
    pub devices: Vec<DeviceHealthReport>,
}

fn json_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum_us\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
        h.count,
        h.sum_us,
        h.mean_us(),
        h.percentile(0.50),
        h.percentile(0.95),
        h.percentile(0.99)
    );
}

impl MetricsSnapshot {
    /// Renders the snapshot as one stable JSON object (hand-formatted —
    /// the runtime carries no serialization dependency). Key order is
    /// fixed, so textual diffs between snapshots are meaningful.
    pub fn to_json(&self) -> String {
        // Destructured so a new counter is a compile error here until
        // the renderer handles it.
        let RuntimeStats {
            submitted,
            requests_f32,
            requests_f64,
            served,
            batches,
            batched_requests,
            solo_requests,
            bypassed_requests,
            error_replies,
            plan_hits,
            plan_misses,
            sharded_batches,
            local_fallbacks,
            comm_bytes,
            evictions,
            rebuilds,
            deadline_shed,
            retries,
            degraded_batches,
            recovered_requests,
            breaker_trips,
            cached_entries,
            cached_bytes,
            current_linger_us,
            inflight_requests,
            scheduler_lanes,
            lane_steals,
            lane_stats: _,
        } = self.stats;
        let mut out = String::with_capacity(4096);
        let _ = write!(out, "{{\"at_us\":{},\"stats\":{{", self.at_us);
        let _ = write!(
            out,
            "\"submitted\":{submitted},\"requests_f32\":{requests_f32},\
             \"requests_f64\":{requests_f64},\"served\":{served},\"batches\":{batches},\
             \"batched_requests\":{batched_requests},\"solo_requests\":{solo_requests},\
             \"bypassed_requests\":{bypassed_requests},\
             \"error_replies\":{error_replies},\"plan_hits\":{plan_hits},\
             \"plan_misses\":{plan_misses},\"sharded_batches\":{sharded_batches},\
             \"local_fallbacks\":{local_fallbacks},\"comm_bytes\":{comm_bytes},\
             \"evictions\":{evictions},\"rebuilds\":{rebuilds},\"deadline_shed\":{deadline_shed},\
             \"retries\":{retries},\"degraded_batches\":{degraded_batches},\
             \"recovered_requests\":{recovered_requests},\"breaker_trips\":{breaker_trips},\
             \"cached_entries\":{cached_entries},\"cached_bytes\":{cached_bytes},\
             \"current_linger_us\":{current_linger_us},\
             \"inflight_requests\":{inflight_requests},\
             \"scheduler_lanes\":{scheduler_lanes},\"lane_steals\":{lane_steals}}}"
        );
        out.push_str(",\"lanes\":[");
        for (i, l) in self.stats.lanes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Destructured so a new per-lane counter is a compile error
            // here until the renderer handles it.
            let crate::runtime::LaneStats {
                depth,
                inflight,
                served,
                batched_requests,
                solo_requests,
                bypassed_requests,
                error_replies,
                steals,
            } = *l;
            let _ = write!(
                out,
                "{{\"lane\":{i},\"depth\":{depth},\"inflight\":{inflight},\
                 \"served\":{served},\"batched_requests\":{batched_requests},\
                 \"solo_requests\":{solo_requests},\
                 \"bypassed_requests\":{bypassed_requests},\
                 \"error_replies\":{error_replies},\"steals\":{steals}}}"
            );
        }
        out.push_str("],\"stages\":{");
        for (i, (stage, h)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", stage.name());
            json_histogram(&mut out, h);
        }
        out.push_str("},\"outcomes\":{");
        for (i, (outcome, h)) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", outcome.name());
            json_histogram(&mut out, h);
        }
        out.push_str("},\"models\":[");
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"dtype\":\"{}\",\"shape_key\":{},\"capacity\":{},\"serves\":{},\
                 \"errors\":{},\"plan_hits\":{},\"plan_misses\":{},\"overflow\":{},\"latency\":",
                m.dtype.rust_name(),
                m.shape_key,
                m.capacity,
                m.serves,
                m.errors,
                m.plan_hits,
                m.plan_misses,
                m.overflow
            );
            json_histogram(&mut out, &m.latency);
            out.push('}');
        }
        out.push_str("],\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"gpu\":{},\"state\":\"{:?}\",\"consecutive_failures\":{},\"trips\":{},\
                 \"executes\":{},\"faults\":{},\"timeouts\":{},\"exec_latency\":",
                d.gpu,
                d.state,
                d.consecutive_failures,
                d.trips,
                d.metrics.executes,
                d.metrics.faults,
                d.metrics.timeouts
            );
            json_histogram(&mut out, &d.metrics.exec_latency);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// lifetime counters as `kron_*` counters/gauges, stage histograms
    /// as cumulative-`le` histograms, per-model serve counters, and
    /// per-device counters.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(8192);
        let RuntimeStats {
            submitted,
            requests_f32,
            requests_f64,
            served,
            batches,
            batched_requests,
            solo_requests,
            bypassed_requests,
            error_replies,
            plan_hits,
            plan_misses,
            sharded_batches,
            local_fallbacks,
            comm_bytes,
            evictions,
            rebuilds,
            deadline_shed,
            retries,
            degraded_batches,
            recovered_requests,
            breaker_trips,
            cached_entries,
            cached_bytes,
            current_linger_us,
            inflight_requests,
            scheduler_lanes,
            lane_steals,
            lane_stats: _,
        } = self.stats;
        for (name, kind, v) in [
            ("kron_submitted_total", "counter", submitted),
            ("kron_requests_f32_total", "counter", requests_f32),
            ("kron_requests_f64_total", "counter", requests_f64),
            ("kron_served_total", "counter", served),
            ("kron_batches_total", "counter", batches),
            ("kron_batched_requests_total", "counter", batched_requests),
            ("kron_solo_requests_total", "counter", solo_requests),
            ("kron_bypassed_requests_total", "counter", bypassed_requests),
            ("kron_error_replies_total", "counter", error_replies),
            ("kron_plan_hits_total", "counter", plan_hits),
            ("kron_plan_misses_total", "counter", plan_misses),
            ("kron_sharded_batches_total", "counter", sharded_batches),
            ("kron_local_fallbacks_total", "counter", local_fallbacks),
            ("kron_comm_bytes_total", "counter", comm_bytes),
            ("kron_evictions_total", "counter", evictions),
            ("kron_rebuilds_total", "counter", rebuilds),
            ("kron_deadline_shed_total", "counter", deadline_shed),
            ("kron_retries_total", "counter", retries),
            ("kron_degraded_batches_total", "counter", degraded_batches),
            (
                "kron_recovered_requests_total",
                "counter",
                recovered_requests,
            ),
            ("kron_breaker_trips_total", "counter", breaker_trips),
            ("kron_cached_entries", "gauge", cached_entries),
            ("kron_cached_bytes", "gauge", cached_bytes),
            ("kron_current_linger_us", "gauge", current_linger_us),
            ("kron_inflight_requests", "gauge", inflight_requests),
            ("kron_scheduler_lanes", "gauge", scheduler_lanes),
            ("kron_lane_steals_total", "counter", lane_steals),
        ] {
            let _ = writeln!(out, "# TYPE {name} {kind}\n{name} {v}");
        }
        for (name, kind, field) in [
            ("kron_lane_depth", "gauge", 0usize),
            ("kron_lane_inflight", "gauge", 1),
            ("kron_lane_served_total", "counter", 2),
            ("kron_lane_steals_by_lane_total", "counter", 3),
        ] {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (i, l) in self.stats.lanes().iter().enumerate() {
                let v = match field {
                    0 => l.depth,
                    1 => l.inflight,
                    2 => l.served,
                    _ => l.steals,
                };
                let _ = writeln!(out, "{name}{{lane=\"{i}\"}} {v}");
            }
        }
        for (stage, h) in &self.stages {
            let name = format!("kron_stage_{}_us", stage.name());
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            let highest = h.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
            for (i, &b) in h.buckets.iter().enumerate().take(highest + 1) {
                cumulative += b;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum_us);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        let _ = writeln!(out, "# TYPE kron_model_serves_total counter");
        for m in &self.models {
            let _ = writeln!(
                out,
                "kron_model_serves_total{{dtype=\"{}\",shape_key=\"{}\",capacity=\"{}\",overflow=\"{}\"}} {}",
                m.dtype.rust_name(),
                m.shape_key,
                m.capacity,
                m.overflow,
                m.serves
            );
        }
        let _ = writeln!(out, "# TYPE kron_device_executes_total counter");
        let _ = writeln!(out, "# TYPE kron_device_faults_total counter");
        for d in &self.devices {
            let _ = writeln!(
                out,
                "kron_device_executes_total{{gpu=\"{}\"}} {}",
                d.gpu, d.metrics.executes
            );
            let _ = writeln!(
                out,
                "kron_device_faults_total{{gpu=\"{}\"}} {}",
                d.gpu, d.metrics.faults
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentile_interpolates_within_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7: [64, 127]
        }
        h.record(10_000); // bucket 14: [8192, 16383]
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // Rank 50 of 99 in [64, 127]: 64 + 63*99/198 = 95.
        assert_eq!(s.percentile(0.50), 95);
        // Rank 99 of 99 sits in the last sub-interval, below the bound.
        assert_eq!(s.percentile(0.99), 126);
        // A lone tail observation reads as its bucket midpoint, inside
        // the bucket that holds the actual 10ms latency.
        assert_eq!(s.percentile(1.0), 12_287);
        assert_eq!(bucket_index(s.percentile(1.0)), bucket_index(10_000));
        assert_eq!(s.mean_us(), (99 * 100 + 10_000) / 100);
    }

    #[test]
    fn percentile_stays_in_the_observed_bucket() {
        // The regression this guards: ~1.2ms latencies landing in
        // bucket 11 [1024, 2047] used to report p50_us = 2047 (upper
        // bound), and 1.0ms ones in bucket 10 reported 1023 — a readout
        // that snapped to whichever side of a power of two the data
        // fell. Interpolation must stay inside the observed bucket.
        let h = LatencyHistogram::new();
        for _ in 0..64 {
            h.record(1_200);
        }
        let s = h.snapshot();
        for p in [0.50, 0.95, 0.99] {
            let v = s.percentile(p);
            assert_eq!(bucket_index(v), bucket_index(1_200), "p{p}: {v}");
        }
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean_us(), 0);
    }

    #[test]
    fn since_diffs_windows() {
        let h = LatencyHistogram::new();
        h.record(5);
        let before = h.snapshot();
        h.record(1_000);
        h.record(1_000);
        let after = h.snapshot();
        let window = after.since(&before);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum_us, 2_000);
        // Rank 1 of 2 in bucket 10 [512, 1023]: 512 + 511/4 = 639.
        assert_eq!(window.percentile(0.5), 639);
        assert_eq!(bucket_index(window.percentile(0.5)), bucket_index(1_000));
    }

    #[test]
    fn model_registry_spills_to_overflow_past_capacity() {
        let hub = MetricsHub::new(0);
        for k in 0..(MODEL_SLOTS as u64 + 5) {
            hub.record_model_serve(DType::F32, k, 64, Outcome::Ok, 10);
        }
        let stats = hub.model_stats();
        assert_eq!(stats.len(), MODEL_SLOTS + 1);
        let spill = stats.last().unwrap();
        assert!(spill.overflow);
        assert_eq!(spill.serves, 5);
        assert!(stats[..MODEL_SLOTS].iter().all(|m| !m.overflow));
    }

    #[test]
    fn device_metrics_round_trip() {
        let hub = MetricsHub::new(2);
        hub.record_device_execute(0, 50);
        hub.record_device_execute(1, 50);
        hub.record_device_fault(1, true);
        hub.record_device_fault(1, false);
        let d1 = hub.device_snapshot(1);
        assert_eq!(d1.executes, 1);
        assert_eq!(d1.faults, 2);
        assert_eq!(d1.timeouts, 1);
        assert_eq!(hub.device_snapshot(7), DeviceMetricsSnapshot::default());
    }
}
