//! Concurrent-serving stress tests: many client threads, mixed shapes and
//! sizes, every result checked against the shuffle oracle; plus
//! shutdown-while-busy and post-shutdown behavior.

use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::{assert_matrices_close, KronError, Matrix};
use kron_runtime::{Backend, Clock, Model, Runtime, RuntimeConfig};
use std::sync::Arc;

fn dist_config() -> RuntimeConfig {
    RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 256,
        backend: Backend::Distributed {
            gpus: 4,
            p2p: false,
        },
        ..RuntimeConfig::default()
    }
}

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 7 * r * cols + 3 * c) % 19) as f64 - 9.0
    })
}

fn model_factors(shapes: &[(usize, usize)], seed: usize) -> Vec<Matrix<f64>> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| seq_matrix(p, q, seed + 5 * i + 1))
        .collect()
}

/// Oracle for one request against a model's factors.
fn oracle(x: &Matrix<f64>, factors: &[Matrix<f64>]) -> Matrix<f64> {
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    kron_matmul_shuffle(x, &refs).unwrap()
}

#[test]
fn mixed_shape_concurrent_serving_matches_oracle() {
    let runtime = Arc::new(Runtime::new(RuntimeConfig {
        max_batch_rows: 64,
        batch_max_m: 16,
        max_queue: 256,
        ..RuntimeConfig::default()
    }));

    // Three models with deliberately different shapes, including a
    // rectangular chain.
    let model_shapes: Vec<Vec<(usize, usize)>> = vec![
        vec![(4, 4), (4, 4)],
        vec![(8, 8), (8, 8)],
        vec![(2, 3), (5, 2), (3, 4)],
    ];
    let factor_sets: Vec<Vec<Matrix<f64>>> = model_shapes
        .iter()
        .enumerate()
        .map(|(i, s)| model_factors(s, 11 * i + 1))
        .collect();
    let models: Vec<Model<f64>> = factor_sets
        .iter()
        .map(|fs| runtime.load_model(fs.clone()).unwrap())
        .collect();
    let factor_sets = Arc::new(factor_sets);
    let models = Arc::new(models);

    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 40;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let runtime = Arc::clone(&runtime);
        let models = Arc::clone(&models);
        let factor_sets = Arc::clone(&factor_sets);
        handles.push(std::thread::spawn(move || {
            for i in 0..REQUESTS_PER_THREAD {
                let which = (t + i) % models.len();
                let model = &models[which];
                // Mix of batchable (m ≤ 16) and solo (m > 16) sizes.
                let m = 1 + (t * 7 + i * 3) % 24;
                let x = seq_matrix(m, model.input_cols(), t * 100 + i);
                let expected = oracle(&x, &factor_sets[which]);
                let y = runtime.execute(model, x).unwrap();
                assert_matrices_close(&y, &expected, &format!("thread {t} req {i}"));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = runtime.stats();
    assert_eq!(stats.submitted, (THREADS * REQUESTS_PER_THREAD) as u64);
    assert_eq!(stats.served, stats.submitted);
    assert_eq!(
        stats.batched_requests + stats.solo_requests + stats.bypassed_requests,
        stats.served
    );
    // Plans must have been reused heavily: at most one batch entry plus a
    // few power-of-two solo entries per model.
    assert!(
        stats.plan_misses <= (3 * model_shapes.len()) as u64,
        "too many plan misses: {}",
        stats.plan_misses
    );
    assert!(stats.plan_hits > stats.plan_misses);
}

#[test]
fn pipelined_tickets_batch_and_match_oracle() {
    // Time-virtualized batching: a manual clock plus a fixed linger
    // window means the scheduler's batch window stays open until *we*
    // advance virtual time — so "the burst coalesces" is a guaranteed
    // property of this test, not a race against how fast the scheduler
    // thread wakes (the old flake surface: on a loaded host the
    // scheduler could serve requests in lockstep singles and the
    // batched_requests assertion went probabilistic).
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 8,
        max_queue: 512,
        batch_linger_us: 1_000,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4), (4, 4)], 3);
    let model = runtime.load_model(factors.clone()).unwrap();

    // Submit the whole burst before time moves: every request lands in
    // one scheduling window.
    let mut tickets = Vec::new();
    let mut expected = Vec::new();
    for i in 0..96 {
        let m = 1 + i % 4;
        let x = seq_matrix(m, model.input_cols(), i);
        expected.push(oracle(&x, &factors));
        tickets.push(runtime.submit(&model, x).unwrap());
    }
    // Close the window: the scheduler drains the whole channel before
    // re-checking its (virtual) linger deadline, then serves everything
    // as row-budgeted chunks. Pump in steps in case the window opened
    // after an earlier advance.
    while runtime.stats().served < 96 {
        time.advance_us(10_000);
        std::thread::yield_now();
    }
    for (i, (t, e)) in tickets.into_iter().zip(expected.iter()).enumerate() {
        let y = t.wait().unwrap();
        assert_matrices_close(&y, e, &format!("ticket {i}"));
    }

    let stats = runtime.stats();
    assert_eq!(stats.served, 96);
    // Everything batchable coalesced (a row-budget tail chunk of one is
    // served solo, so allow a sliver), across several row-budgeted
    // fused executes.
    assert!(
        stats.batched_requests >= 90,
        "the held window must coalesce the burst, stats: {stats:?}"
    );
    assert!(stats.batches >= 6, "240 rows over 32-row chunks: {stats:?}");
}

#[test]
fn shutdown_while_busy_serves_everything_accepted() {
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        max_queue: 64,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(8, 8), (8, 8)], 7);
    let model = runtime.load_model(factors.clone()).unwrap();

    let mut tickets = Vec::new();
    let mut expected = Vec::new();
    for i in 0..64 {
        let m = 1 + i % 8;
        let x = seq_matrix(m, model.input_cols(), i);
        expected.push(oracle(&x, &factors));
        tickets.push(runtime.submit(&model, x).unwrap());
    }
    // Shut down immediately, with (nearly) everything still queued. Every
    // accepted request must still complete with a correct result.
    runtime.shutdown();
    for (i, (t, e)) in tickets.into_iter().zip(expected.iter()).enumerate() {
        let y = t.wait().unwrap();
        assert_matrices_close(&y, e, &format!("post-shutdown ticket {i}"));
    }
}

#[test]
fn sharded_concurrent_serving_matches_oracle() {
    let runtime = Arc::new(Runtime::new(dist_config()));
    // One shardable model (uniform square pow2) and one the grid cannot
    // shard (rectangular chain) — the fallback must interleave cleanly
    // with sharded batches under concurrency.
    let shardable = model_factors(&[(4, 4), (4, 4), (4, 4)], 3);
    let fallback = model_factors(&[(2, 3), (5, 2), (3, 4)], 17);
    let factor_sets = Arc::new(vec![shardable, fallback]);
    let models: Vec<Model<f64>> = factor_sets
        .iter()
        .map(|fs| runtime.load_model(fs.clone()).unwrap())
        .collect();
    let models = Arc::new(models);

    const THREADS: usize = 6;
    const REQUESTS_PER_THREAD: usize = 30;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let runtime = Arc::clone(&runtime);
        let models = Arc::clone(&models);
        let factor_sets = Arc::clone(&factor_sets);
        handles.push(std::thread::spawn(move || {
            for i in 0..REQUESTS_PER_THREAD {
                let which = (t + i) % models.len();
                let model = &models[which];
                // Mixed batchable/solo sizes, including M with every
                // residue mod GM = 2 (exercising the zero-padding).
                let m = 1 + (t * 7 + i * 3) % 24;
                let x = seq_matrix(m, model.input_cols(), t * 100 + i);
                let expected = oracle(&x, &factor_sets[which]);
                let y = runtime.execute(model, x).unwrap();
                assert_matrices_close(&y, &expected, &format!("dist thread {t} req {i}"));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = runtime.stats();
    assert_eq!(stats.served, (THREADS * REQUESTS_PER_THREAD) as u64);
    assert!(stats.sharded_batches > 0, "nothing sharded: {stats:?}");
    assert!(stats.local_fallbacks > 0, "no fallback entries: {stats:?}");
    assert!(stats.comm_bytes > 0, "no communication recorded: {stats:?}");
}

#[test]
fn shutdown_while_sharded_drains_all_accepted() {
    let runtime = Runtime::new(dist_config());
    let factors = model_factors(&[(8, 8), (8, 8)], 7);
    let model = runtime.load_model(factors.clone()).unwrap();

    let mut tickets = Vec::new();
    let mut expected = Vec::new();
    for i in 0..64 {
        let m = 1 + i % 8;
        let x = seq_matrix(m, model.input_cols(), i);
        expected.push(oracle(&x, &factors));
        tickets.push(runtime.submit(&model, x).unwrap());
    }
    // Shut down with (nearly) everything still queued: every accepted
    // ticket must still resolve with a correct sharded result.
    runtime.shutdown();
    for (i, (t, e)) in tickets.into_iter().zip(expected.iter()).enumerate() {
        let y = t.wait().unwrap();
        assert_matrices_close(&y, e, &format!("post-shutdown sharded ticket {i}"));
    }
}

#[test]
fn device_fault_recovers_transparently_by_default() {
    let runtime = Runtime::new(dist_config());
    let factors = model_factors(&[(4, 4), (4, 4), (4, 4)], 5);
    let model = runtime.load_model(factors.clone()).unwrap();
    let x = seq_matrix(4, model.input_cols(), 2);
    let expected = oracle(&x, &factors);

    // Healthy batch first.
    let y = runtime.execute(&model, x.clone()).unwrap();
    assert_matrices_close(&y, &expected, "pre-fault batch");

    // Out-of-range devices are rejected up front — an unfireable fault
    // must not stay silently armed.
    assert!(matches!(
        runtime.inject_device_fault(64),
        Err(KronError::InvalidGrid { .. })
    ));

    // Arm a one-shot fault on simulated device 2, then submit a linked
    // batch. With the default retry policy the faulted chunk is rebuilt
    // and re-executed: every client sees Ok, and results stay bit-exact
    // with the oracle (all backends share one microkernel).
    runtime.inject_device_fault(2).unwrap();
    let xs: Vec<Matrix<f64>> = (0..4)
        .map(|i| seq_matrix(2, model.input_cols(), 10 + i))
        .collect();
    let oracles: Vec<Matrix<f64>> = xs.iter().map(|x| oracle(x, &factors)).collect();
    let tickets = runtime
        .submit_linked(xs.into_iter().map(|x| (&model, x)).collect())
        .unwrap();
    let mut recovered = 0;
    for (i, (t, e)) in tickets.into_iter().zip(oracles.iter()).enumerate() {
        let (y, receipt) = t.wait_with_receipt().unwrap();
        assert_matrices_close(&y, e, &format!("request {i}"));
        if receipt.attempts > 1 {
            recovered += 1;
        }
    }
    assert!(recovered >= 1, "the faulted chunk must report a retry");

    // The very next batch succeeds — no hang, no residue — and the stats
    // ledger shows the drill: a retry happened, clients recovered.
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "post-fault batch");
    let stats = runtime.stats();
    assert!(stats.sharded_batches >= 2, "stats: {stats:?}");
    assert!(stats.retries >= 1, "stats: {stats:?}");
    assert!(stats.recovered_requests >= 1, "stats: {stats:?}");
}

#[test]
fn device_fault_surfaces_when_retry_disabled() {
    // `max_attempts: 0` restores the pre-retry contract: the fault fails
    // only its own batch, client-visibly, and the queue moves on.
    let runtime = Runtime::new(RuntimeConfig {
        retry: kron_runtime::RetryPolicy {
            max_attempts: 0,
            backoff_us: 0,
            degrade: false,
        },
        ..dist_config()
    });
    let factors = model_factors(&[(4, 4), (4, 4), (4, 4)], 5);
    let model = runtime.load_model(factors.clone()).unwrap();
    let x = seq_matrix(4, model.input_cols(), 2);
    let expected = oracle(&x, &factors);

    // Healthy batch first.
    let y = runtime.execute(&model, x.clone()).unwrap();
    assert_matrices_close(&y, &expected, "pre-fault batch");

    runtime.inject_device_fault(2).unwrap();
    let xs: Vec<Matrix<f64>> = (0..4)
        .map(|i| seq_matrix(2, model.input_cols(), 10 + i))
        .collect();
    let oracles: Vec<Matrix<f64>> = xs.iter().map(|x| oracle(x, &factors)).collect();
    let tickets = runtime
        .submit_linked(xs.into_iter().map(|x| (&model, x)).collect())
        .unwrap();
    let mut failures = 0;
    for (i, (t, e)) in tickets.into_iter().zip(oracles.iter()).enumerate() {
        match t.wait() {
            Err(KronError::DeviceFailure { gpu, ref reason }) => {
                assert_eq!(gpu, 2, "request {i}");
                assert!(reason.contains("injected device fault"), "{reason}");
                failures += 1;
            }
            Ok(y) => assert_matrices_close(&y, e, &format!("non-faulted request {i}")),
            Err(other) => panic!("request {i}: unexpected error {other:?}"),
        }
        if i == 0 {
            assert_eq!(failures, 1, "request 0 must ride the faulted batch");
        }
    }
    assert!(failures >= 1);

    // The very next batch succeeds (fresh engine, balanced fabric) — no
    // hang, no residue, and nothing counted as a retry.
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "post-fault batch");
    let stats = runtime.stats();
    assert!(stats.sharded_batches >= 2, "stats: {stats:?}");
    assert_eq!(stats.retries, 0, "stats: {stats:?}");
}

#[test]
fn linked_batch_serves_and_validates() {
    let runtime = Runtime::new(dist_config());
    let factors = model_factors(&[(4, 4), (4, 4)], 9);
    let model = runtime.load_model(factors.clone()).unwrap();

    let xs: Vec<Matrix<f64>> = (0..5)
        .map(|i| seq_matrix(1 + i % 3, model.input_cols(), 40 + i))
        .collect();
    let expected: Vec<Matrix<f64>> = xs.iter().map(|x| oracle(x, &factors)).collect();
    let tickets = runtime
        .submit_linked(xs.into_iter().map(|x| (&model, x)).collect())
        .unwrap();
    for (i, (t, e)) in tickets.into_iter().zip(expected.iter()).enumerate() {
        let (y, stats) = t.wait_with_stats().unwrap();
        assert_matrices_close(&y, e, &format!("linked request {i}"));
        // Sharded serving attributes a simulated share to every request.
        let s = stats.expect("sharded requests carry a summary");
        assert!(s.seconds > 0.0 && s.comm_bytes > 0, "summary {s:?}");
    }
    // An empty linked batch is a no-op.
    assert!(runtime.submit_linked::<f64>(Vec::new()).unwrap().is_empty());
}

#[test]
fn same_shape_models_share_one_plan() {
    // Two models with identical factor-shape chains but different values:
    // the plan cache is shape-keyed, so the second model rides the first
    // model's tuned plan and workspace — and still gets its own numbers.
    let runtime = Runtime::with_defaults();
    let fa = model_factors(&[(4, 4), (4, 4)], 1);
    let fb = model_factors(&[(4, 4), (4, 4)], 99);
    let a = runtime.load_model(fa.clone()).unwrap();
    let b = runtime.load_model(fb.clone()).unwrap();
    for i in 0..4 {
        let x = seq_matrix(3, a.input_cols(), i);
        let ya = runtime.execute(&a, x.clone()).unwrap();
        let yb = runtime.execute(&b, x.clone()).unwrap();
        assert_matrices_close(&ya, &oracle(&x, &fa), &format!("model a req {i}"));
        assert_matrices_close(&yb, &oracle(&x, &fb), &format!("model b req {i}"));
        assert_ne!(ya, yb, "different factor values must differ");
    }
    let stats = runtime.stats();
    assert_eq!(stats.plan_misses, 1, "stats: {stats:?}");
    assert_eq!(stats.plan_hits, 7, "stats: {stats:?}");
}

#[test]
fn session_calls_fail_cleanly_after_shutdown() {
    let runtime = Runtime::with_defaults();
    let factors = model_factors(&[(4, 4)], 5);
    let model = runtime.load_model(factors.clone()).unwrap();
    let mut session = runtime.session();

    // Session works while the runtime is up...
    let x = seq_matrix(2, 4, 1);
    let y = Matrix::zeros(2, 4);
    let (x, y) = session.call(&model, x, y).unwrap();
    assert_matrices_close(&y, &oracle(&x, &factors), "pre-shutdown call");

    // ...and degrades to a clean error afterwards instead of hanging.
    runtime.shutdown();
    let err = session.call(&model, x, y).unwrap_err();
    assert_eq!(err, KronError::Shutdown);
}

/// N submitter threads × M mixed-dtype requests through the sharded
/// scheduler (4 lanes): every result stays bit-exact against the
/// shuffle oracle, and the serve ledger reconciles **per lane** as well
/// as globally — `served == batched + solo + bypassed + error_replies`
/// on each live lane, lane sums equal the global counters, and every
/// inflight gauge returns to zero.
#[test]
fn multi_producer_contention_reconciles_per_lane_and_globally() {
    let runtime = Arc::new(Runtime::new(RuntimeConfig {
        scheduler_lanes: 4,
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 128,
        ..RuntimeConfig::default()
    }));

    // Six f64 models with distinct shape chains (spread across lanes by
    // the plan-identity hash) plus two f32 models sharing chains with
    // f64 ones — the dtype folds into the hash, so same-shape mixed
    // traffic can still split.
    let f64_shapes: Vec<Vec<(usize, usize)>> = vec![
        vec![(4, 4), (4, 4)],
        vec![(8, 8), (8, 8)],
        vec![(2, 3), (5, 2), (3, 4)],
        vec![(3, 3), (3, 3), (3, 3)],
        vec![(16, 16)],
        vec![(2, 2), (2, 2), (2, 2), (2, 2)],
    ];
    let f64_factors: Vec<Vec<Matrix<f64>>> = f64_shapes
        .iter()
        .enumerate()
        .map(|(i, s)| model_factors(s, 13 * i + 1))
        .collect();
    let f64_models: Vec<Model<f64>> = f64_factors
        .iter()
        .map(|fs| runtime.load_model(fs.clone()).unwrap())
        .collect();
    let f32_factors: Vec<Vec<Matrix<f32>>> = f64_shapes[..2]
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.iter()
                .enumerate()
                .map(|(j, &(p, q))| {
                    Matrix::from_fn(p, q, |r, c| {
                        ((i * 31 + j * 5 + 7 * r * q + 3 * c) % 19) as f32 - 9.0
                    })
                })
                .collect()
        })
        .collect();
    let f32_models: Vec<Model<f32>> = f32_factors
        .iter()
        .map(|fs| runtime.load_model(fs.clone()).unwrap())
        .collect();
    let f64_factors = Arc::new(f64_factors);
    let f64_models = Arc::new(f64_models);
    let f32_factors = Arc::new(f32_factors);
    let f32_models = Arc::new(f32_models);

    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 48;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let runtime = Arc::clone(&runtime);
        let f64_models = Arc::clone(&f64_models);
        let f64_factors = Arc::clone(&f64_factors);
        let f32_models = Arc::clone(&f32_models);
        let f32_factors = Arc::clone(&f32_factors);
        handles.push(std::thread::spawn(move || {
            for i in 0..REQUESTS_PER_THREAD {
                let m = 1 + (t * 7 + i * 3) % 24;
                if (t + i) % 3 == 0 {
                    let which = (t + i) % f32_models.len();
                    let model = &f32_models[which];
                    let x = Matrix::<f32>::from_fn(m, model.input_cols(), |r, c| {
                        ((t * 100 + i + 7 * r + 3 * c) % 19) as f32 - 9.0
                    });
                    let refs: Vec<&Matrix<f32>> = f32_factors[which].iter().collect();
                    let expected = kron_matmul_shuffle(&x, &refs).unwrap();
                    let y = runtime.execute(model, x).unwrap();
                    assert_eq!(y, expected, "f32 thread {t} req {i} must be bit-exact");
                } else {
                    let which = (t + i) % f64_models.len();
                    let model = &f64_models[which];
                    let x = seq_matrix(m, model.input_cols(), t * 100 + i);
                    let expected = oracle(&x, &f64_factors[which]);
                    let y = runtime.execute(model, x).unwrap();
                    assert_matrices_close(&y, &expected, &format!("f64 thread {t} req {i}"));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = runtime.stats();
    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    assert_eq!(stats.submitted, total, "stats: {stats:?}");
    assert_eq!(stats.served, total, "stats: {stats:?}");
    assert_eq!(stats.scheduler_lanes, 4, "stats: {stats:?}");
    assert_eq!(
        stats.batched_requests
            + stats.solo_requests
            + stats.bypassed_requests
            + stats.error_replies,
        stats.served,
        "global decomposition: {stats:?}"
    );
    let lanes = stats.lanes();
    assert_eq!(lanes.len(), 4);
    let mut lane_served_sum = 0;
    let mut used = 0;
    for (i, lane) in lanes.iter().enumerate() {
        assert_eq!(
            lane.batched_requests
                + lane.solo_requests
                + lane.bypassed_requests
                + lane.error_replies,
            lane.served,
            "lane {i} decomposition: {lane:?}"
        );
        assert_eq!(lane.inflight, 0, "lane {i} gauge must drain: {lane:?}");
        lane_served_sum += lane.served;
        if lane.served > 0 {
            used += 1;
        }
    }
    assert_eq!(lane_served_sum, stats.served, "lane sums: {lanes:?}");
    assert_eq!(stats.inflight_requests, 0, "stats: {stats:?}");
    // Eight distinct plan identities over four lanes: the hash must not
    // funnel everything into one lane (stealing may shift serves, but
    // only *away* from a busy lane — at least two lanes see traffic).
    assert!(used >= 2, "all traffic on one lane: {lanes:?}");
}

/// Two (or eight) concurrent submitters against one warm model race the
/// bypass eligibility check. Eligibility is a CAS claim on the lane's
/// inflight gauge, so at most one wins the inline path at a time; the
/// rest batch. Every result stays oracle-exact, the ledger decomposes,
/// and the gauges return to zero — the regression test for the
/// two-readers-both-see-idle race the Relaxed-load gate allowed.
#[test]
fn concurrent_bypass_claims_race_safely_on_one_warm_model() {
    let runtime = Arc::new(Runtime::with_defaults());
    let factors = model_factors(&[(4, 4), (4, 4)], 21);
    let model = Arc::new(runtime.load_model(factors.clone()).unwrap());
    // Warm the full-width plan so every submitter sees a bypassable
    // entry.
    let warm = seq_matrix(2, model.input_cols(), 0);
    runtime.execute(&model, warm).unwrap();

    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 60;
    let factors = Arc::new(factors);
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let runtime = Arc::clone(&runtime);
        let model = Arc::clone(&model);
        let factors = Arc::clone(&factors);
        handles.push(std::thread::spawn(move || {
            for i in 0..REQUESTS_PER_THREAD {
                let x = seq_matrix(1 + i % 3, model.input_cols(), t * 1000 + i);
                let expected = oracle(&x, &factors);
                let y = runtime.execute(&model, x).unwrap();
                assert_matrices_close(&y, &expected, &format!("claim race thread {t} req {i}"));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = runtime.stats();
    let total = 1 + (THREADS * REQUESTS_PER_THREAD) as u64;
    assert_eq!(stats.served, total, "stats: {stats:?}");
    assert_eq!(
        stats.batched_requests
            + stats.solo_requests
            + stats.bypassed_requests
            + stats.error_replies,
        stats.served,
        "decomposition: {stats:?}"
    );
    assert_eq!(stats.inflight_requests, 0, "gauge must drain: {stats:?}");
    for (i, lane) in stats.lanes().iter().enumerate() {
        assert_eq!(lane.inflight, 0, "lane {i} gauge must drain: {lane:?}");
    }
}

/// One hot model backlogs its home lane while three sibling lanes sit
/// idle: the idle lanes must steal from the deep ring (observable in
/// `lane_steals` and per-lane `steals`/`served`), and every stolen
/// request still matches the oracle bit-for-bit.
#[test]
fn work_stealing_relieves_a_backlogged_lane() {
    let runtime = Arc::new(Runtime::new(RuntimeConfig {
        scheduler_lanes: 4,
        max_batch_rows: 16,
        batch_max_m: 8,
        // A small ring (max_queue * 2) keeps the home lane visibly deep,
        // so sibling steal polls cannot miss the backlog.
        max_queue: 32,
        inline_bypass: false,
        ..RuntimeConfig::default()
    }));
    let factors = model_factors(&[(4, 4), (4, 4)], 33);
    let model = Arc::new(runtime.load_model(factors.clone()).unwrap());
    let home_lane = runtime.lane_for(&model);

    const THREADS: usize = 4;
    const REQUESTS_PER_THREAD: usize = 400;
    let factors = Arc::new(factors);
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let runtime = Arc::clone(&runtime);
        let model = Arc::clone(&model);
        let factors = Arc::clone(&factors);
        handles.push(std::thread::spawn(move || {
            for i in 0..REQUESTS_PER_THREAD {
                let x = seq_matrix(1 + i % 4, model.input_cols(), t * 10_000 + i);
                let expected = oracle(&x, &factors);
                let y = runtime.execute(&model, x).unwrap();
                assert_matrices_close(&y, &expected, &format!("steal thread {t} req {i}"));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = runtime.stats();
    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    assert_eq!(stats.served, total, "stats: {stats:?}");
    assert!(
        stats.lane_steals >= 1,
        "idle lanes never stole from the backlogged ring: {stats:?}"
    );
    let lanes = stats.lanes();
    // Stolen work is served (and counted) on the thief's lane.
    let stolen_serves: u64 = lanes
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != home_lane)
        .map(|(_, l)| l.served)
        .sum();
    assert!(
        stolen_serves >= 1,
        "thief lanes served nothing (home {home_lane}): {lanes:?}"
    );
    let lane_served_sum: u64 = lanes.iter().map(|l| l.served).sum();
    assert_eq!(lane_served_sum, stats.served, "lane sums: {lanes:?}");
}

#[test]
fn submit_validates_shapes() {
    let runtime = Runtime::with_defaults();
    let model = runtime.load_model(model_factors(&[(4, 4)], 1)).unwrap();
    // Wrong input width.
    assert!(runtime.submit(&model, seq_matrix(2, 5, 0)).is_err());
    // Zero rows.
    assert!(runtime.submit(&model, Matrix::<f64>::zeros(0, 4)).is_err());
    // Session with a mis-shaped output buffer.
    let mut session = runtime.session();
    assert!(session
        .call(&model, seq_matrix(2, 4, 0), Matrix::zeros(2, 5))
        .is_err());
    // Degenerate models are rejected at load.
    assert!(runtime.load_model::<f64>(vec![]).is_err());
    assert!(runtime
        .load_model(vec![Matrix::<f64>::zeros(0, 3)])
        .is_err());
}
