//! # kron-runtime
//!
//! A persistent serving runtime for Kron-Matmul: the layer the ROADMAP's
//! production north star needs between request traffic and the fused
//! execution path in `fastkron-core`.
//!
//! The paper's kernels shine at large `M`, but real serving traffic (GP
//! inference, graph kernels) arrives as many small-`M` requests — the
//! Table 3/4 shapes that underuse wide hosts. Following Jhurani &
//! Mullowney's observation that many small Kronecker problems should be
//! batched into one launch, this crate turns the small-`M` weakness into
//! the fused path's best case by stacking same-model requests row-wise
//! into one large-`M` execute.
//!
//! ## Architecture
//!
//! ```text
//!  clients                       scheduler thread              compute
//!  ───────                      ─────────────────              ───────
//!  submit(x) ──► [gate] ──► channel ──► batcher ─┬─► plan cache
//!  Ticket / Session              │  groups same-  │   PlanKey → KronPlan
//!    ▲                           │  model small-M │   + Workspace
//!    │                           │  requests      │   + batch buffers
//!    │                           ▼                ▼
//!    │                     gather rows      Workspace::execute_rows
//!    │                     into batch X  ──────► persistent worker pool
//!    │                           │               (rayon::ThreadPool::global,
//!    │                           ▼                row tiles / wide mode)
//!    └──── slot.fill() ◄── scatter rows to per-request Y
//! ```
//!
//! * **Persistent worker pool** — compute runs on the process-wide
//!   [`rayon::ThreadPool`]: long-lived workers parked on a channel, one
//!   task handoff per row tile instead of a thread spawn per execute.
//!   A single unbatchable small-`M` request still uses every core via the
//!   exec layer's column-range splitting (wide mode).
//! * **Plan + workspace cache** — keyed by model and row capacity
//!   (introspectable as [`kron_core::PlanKey`]s): after the first request
//!   of a shape, serving does **zero planning and zero allocation** per
//!   request — plans, ping-pong workspaces, and batch buffers are all
//!   reused (proved by a counting-allocator test).
//! * **Cross-request batcher** — the scheduler drains the request queue,
//!   groups same-model requests with `M ≤ batch_max_m`, stacks them
//!   row-wise into one batch execute (up to `max_batch_rows` rows), and
//!   scatters results back to each request's output.
//!
//! ## Usage
//!
//! ```
//! use kron_core::Matrix;
//! use kron_runtime::Runtime;
//!
//! let runtime = Runtime::<f32>::with_defaults();
//! let factors: Vec<Matrix<f32>> = (0..2).map(|_| Matrix::identity(4)).collect();
//! let model = runtime.load_model(factors).unwrap();
//!
//! // Asynchronous: submit returns a ticket, results arrive batched.
//! let x = Matrix::<f32>::from_fn(2, 16, |r, c| (r + c) as f32);
//! let ticket = runtime.submit(&model, x.clone()).unwrap();
//! let y = ticket.wait().unwrap();
//! assert_eq!(y, x); // identity factors ⇒ identity map
//!
//! // Synchronous convenience.
//! let y2 = runtime.execute(&model, x).unwrap();
//! assert_eq!(y2, y);
//! ```
//!
//! For allocation-free steady-state serving, hold a [`Session`] and
//! recycle its buffers: [`Session::call`] moves `x`/`y` in and returns
//! them filled.

#![deny(missing_docs)]

mod cache;
mod runtime;
mod scheduler;

pub use cache::PlanCache;
pub use runtime::{Model, Runtime, RuntimeConfig, RuntimeStats, Session, Ticket};
