//! Fusion of consecutive sliced multiplications in shared memory (§4.2).
//!
//! Unlike the linear-algebra baselines — which must round-trip every
//! intermediate through global memory — FastKron can keep a thread block's
//! `TK` elements resident in shared memory across `Nfused = ⌊log_P TK⌋`
//! consecutive factors, writing global memory once per fused group. The
//! epilogue (`StoreFusedShMem`, paper Figure 7) maps each shared-memory
//! position to its column in the global intermediate: after the `i`-th
//! fused multiply the block's data forms `TQᵢ` sets of `TK/Pⁱ` contiguous
//! elements with stride `K/Pⁱ` in the global intermediate.
//!
//! Fusion requires the whole factor staged per tile (`TP = P`) and all `Q`
//! columns processed by every block (`TQ = Q`); the paper finds this holds
//! for `P ≤ 32`, which the planner enforces.

use crate::kernel::{shared_col, GlobalDst, GlobalSrc};
use crate::tile::TileConfig;
use gpu_sim::trace::{Dir, Tracer};
use gpu_sim::KernelStats;
use kron_core::{Element, KronError, Matrix, Result};

/// A fused launch over `nfused` consecutive square factors.
pub struct FusedKernel<'a, T> {
    /// Tile configuration; must have `tp == p` and `tq == q == p`.
    pub cfg: TileConfig,
    /// Rows of `X`.
    pub m: usize,
    /// Columns of `X` (and of every intermediate — factors are square).
    pub k: usize,
    /// The factors this kernel multiplies, in multiplication order
    /// (`F_f` first, i.e. the *last* remaining factor of the problem).
    pub factors: &'a [&'a Matrix<T>],
}

impl<'a, T: Element> FusedKernel<'a, T> {
    /// Builds and validates a fused kernel.
    ///
    /// # Errors
    /// [`KronError::InvalidTileConfig`] unless all factors are square with
    /// the same `P`, `TP == P`, `TQ == Q`, and `TK ≥ P^nfused`.
    pub fn new(cfg: TileConfig, m: usize, k: usize, factors: &'a [&'a Matrix<T>]) -> Result<Self> {
        let fail = |reason: String| Err(KronError::InvalidTileConfig { reason });
        let Some(first) = factors.first() else {
            return Err(KronError::NoFactors);
        };
        let p = first.rows();
        if factors.iter().any(|f| f.rows() != p || f.cols() != p) {
            return fail("fused kernel requires identical square factors".into());
        }
        cfg.validate(m, k, p, p)?;
        if cfg.tp != p {
            return fail(format!(
                "fusion requires TP = P (= {p}), got TP = {}",
                cfg.tp
            ));
        }
        if cfg.tq != p {
            return fail(format!(
                "fusion requires TQ = Q (= {p}), got TQ = {}",
                cfg.tq
            ));
        }
        if cfg.tk < p.pow(factors.len() as u32) {
            return fail(format!(
                "TK = {} cannot hold {} fused multiplies of P = {p} (need ≥ {})",
                cfg.tk,
                factors.len(),
                p.pow(factors.len() as u32)
            ));
        }
        Ok(FusedKernel { cfg, m, k, factors })
    }

    /// Grid dimensions `{⌈M/TM⌉, K/TK}` (no `Q` dimension — each block
    /// processes all columns).
    pub fn grid(&self) -> (usize, usize) {
        (self.m.div_ceil(self.cfg.tm), self.k / self.cfg.tk)
    }

    /// Executes every thread block, producing the numeric result of the
    /// `nfused` consecutive sliced multiplies.
    pub fn run_all(&self, x: &Matrix<T>) -> Result<Matrix<T>> {
        if x.rows() != self.m || x.cols() != self.k {
            return Err(KronError::ShapeMismatch {
                expected: format!("X {}×{}", self.m, self.k),
                found: format!("X {}×{}", x.rows(), x.cols()),
            });
        }
        let mut y = Matrix::zeros(self.m, self.k);
        let (gx, gy) = self.grid();
        let src = GlobalSrc::Real(x.as_slice());
        for bx in 0..gx {
            for by in 0..gy {
                let mut dst = GlobalDst::Real(y.as_mut_slice());
                self.run_block(bx, by, src, &mut dst, &mut None);
            }
        }
        Ok(y)
    }

    /// Runs block `(0, 0)` in address-only mode, returning its counters.
    pub fn trace_block(&self, tracer: &mut Tracer) -> KernelStats {
        let before = tracer.stats;
        let src: GlobalSrc<'_, T> = GlobalSrc::Zeros;
        let mut dst: GlobalDst<'_, T> = GlobalDst::Discard;
        self.run_block(0, 0, src, &mut dst, &mut Some(tracer));
        let mut after = tracer.stats;
        after.flops -= before.flops;
        after.smem_load_transactions -= before.smem_load_transactions;
        after.smem_store_transactions -= before.smem_store_transactions;
        after.smem_load_ideal -= before.smem_load_ideal;
        after.smem_store_ideal -= before.smem_store_ideal;
        after.gmem_load_sectors -= before.gmem_load_sectors;
        after.gmem_store_sectors -= before.gmem_store_sectors;
        after.gmem_useful_bytes -= before.gmem_useful_bytes;
        after.barriers -= before.barriers;
        after
    }

    /// Executes one thread block.
    pub fn run_block(
        &self,
        bx: usize,
        by: usize,
        x: GlobalSrc<'_, T>,
        y: &mut GlobalDst<'_, T>,
        tracer: &mut Option<&mut Tracer>,
    ) {
        let TileConfig {
            tm,
            tk,
            rk,
            rq,
            rp,
            caching,
            ..
        } = self.cfg;
        let p = self.factors[0].rows();
        let nfused = self.factors.len();
        let elem_bytes = T::DTYPE.bytes();
        let slices = tk / p;
        let slice_groups = slices / rk;
        let bdim = slice_groups * (p / rq);
        let warp = 32;

        // Double-buffered shared intermediate (Xs1/Xs2 of Figure 6) and the
        // staged factor.
        let mut xs_a = vec![T::ZERO; tm * tk];
        let mut xs_b = vec![T::ZERO; tm * tk];
        let mut fs = vec![T::ZERO; p * p];
        let mut yr = vec![T::ZERO; bdim * tm * rk * rq];

        let mut g_addrs: Vec<usize> = Vec::with_capacity(warp);
        let mut s_addrs: Vec<usize> = Vec::with_capacity(warp);

        // ---- Load the block's TK columns of X into shared memory ----
        for mi in 0..tm {
            let grow = bx * tm + mi;
            let in_range = grow < self.m;
            let mut base = 0;
            while base < tk {
                let todo = (tk - base).min(bdim);
                for w0 in (0..todo).step_by(warp) {
                    let lanes = (todo - w0).min(warp);
                    g_addrs.clear();
                    s_addrs.clear();
                    for l in 0..lanes {
                        let c = base + w0 + l;
                        let scol = shared_col(caching, c / p, c % p, p, rk);
                        if in_range {
                            let gidx = grow * self.k + by * tk + c;
                            xs_a[mi * tk + scol] = x.read(gidx);
                            if tracer.is_some() {
                                g_addrs.push(gidx * elem_bytes);
                                s_addrs.push((mi * tk + scol) * elem_bytes);
                            }
                        }
                    }
                    if let Some(t) = tracer.as_deref_mut() {
                        t.global_access(Dir::Load, &g_addrs, elem_bytes);
                        t.shared_access(Dir::Store, &s_addrs, elem_bytes);
                    }
                }
                base += bdim;
            }
        }
        if let Some(t) = tracer.as_deref_mut() {
            t.barrier();
        }

        // ---- Nfused sliced multiplies, shared → shared ----
        for (fi, factor) in self.factors.iter().enumerate() {
            // Stage the whole factor (TP = P, TQ = Q = P).
            let ftile = p * p;
            let mut base = 0;
            while base < ftile {
                let todo = (ftile - base).min(bdim);
                for w0 in (0..todo).step_by(warp) {
                    let lanes = (todo - w0).min(warp);
                    g_addrs.clear();
                    s_addrs.clear();
                    for l in 0..lanes {
                        let idx = base + w0 + l;
                        fs[idx] = factor[(idx / p, idx % p)];
                        if tracer.is_some() {
                            g_addrs.push(idx * elem_bytes);
                            s_addrs.push(idx * elem_bytes);
                        }
                    }
                    if let Some(t) = tracer.as_deref_mut() {
                        t.global_access(Dir::Load, &g_addrs, elem_bytes);
                        t.shared_access(Dir::Store, &s_addrs, elem_bytes);
                    }
                }
                base += bdim;
            }
            if let Some(t) = tracer.as_deref_mut() {
                t.barrier();
            }

            // Sliced multiply Xs_a → Xs_b: every thread computes its
            // RK×RQ tile per row, with RP-step register staging, exactly
            // like the unfused kernel but sourcing shared memory.
            for v in yr.iter_mut() {
                *v = T::ZERO;
            }
            for rp_base in (0..p).step_by(rp) {
                for w0 in (0..bdim).step_by(warp) {
                    let lanes = (bdim - w0).min(warp);
                    // X loads.
                    for mi in 0..tm {
                        for i in 0..rk {
                            for pp in 0..rp {
                                s_addrs.clear();
                                for l in 0..lanes {
                                    let tid = w0 + l;
                                    let yk = (tid % slice_groups) * rk;
                                    let scol = shared_col(caching, yk + i, rp_base + pp, p, rk);
                                    if tracer.is_some() {
                                        s_addrs.push((mi * tk + scol) * elem_bytes);
                                    }
                                }
                                if let Some(t) = tracer.as_deref_mut() {
                                    t.shared_access(Dir::Load, &s_addrs, elem_bytes);
                                }
                            }
                        }
                    }
                    // F loads.
                    for pp in 0..rp {
                        for qq in 0..rq {
                            s_addrs.clear();
                            for l in 0..lanes {
                                let tid = w0 + l;
                                let yq = (tid / slice_groups) * rq;
                                if tracer.is_some() {
                                    s_addrs.push(((rp_base + pp) * p + yq + qq) * elem_bytes);
                                }
                            }
                            if let Some(t) = tracer.as_deref_mut() {
                                t.shared_access(Dir::Load, &s_addrs, elem_bytes);
                            }
                        }
                    }
                    // FMA (functional — reads go straight to the buffers;
                    // the traced addresses above are the same ones).
                    for l in 0..lanes {
                        let tid = w0 + l;
                        let yk = (tid % slice_groups) * rk;
                        let yq = (tid / slice_groups) * rq;
                        for mi in 0..tm {
                            for i in 0..rk {
                                for qq in 0..rq {
                                    let yidx = ((tid * tm + mi) * rk + i) * rq + qq;
                                    let mut acc = yr[yidx];
                                    for pp in 0..rp {
                                        let scol = shared_col(caching, yk + i, rp_base + pp, p, rk);
                                        let xv = xs_a[mi * tk + scol];
                                        let fv = fs[(rp_base + pp) * p + yq + qq];
                                        acc = xv.mul_add(fv, acc);
                                    }
                                    yr[yidx] = acc;
                                }
                            }
                        }
                    }
                    if let Some(t) = tracer.as_deref_mut() {
                        t.flops(2 * (lanes * tm * rk * rq * rp) as u64);
                    }
                }
            }
            if let Some(t) = tracer.as_deref_mut() {
                t.barrier();
            }

            // Store this multiply's outputs into Xs_b at the *logical*
            // column q·S + s, re-shifted for the next multiply's slicing.
            for w0 in (0..bdim).step_by(warp) {
                let lanes = (bdim - w0).min(warp);
                for mi in 0..tm {
                    for i in 0..rk {
                        for qq in 0..rq {
                            s_addrs.clear();
                            for l in 0..lanes {
                                let tid = w0 + l;
                                let yk = (tid % slice_groups) * rk;
                                let yq = (tid / slice_groups) * rq;
                                let logical = (yq + qq) * slices + yk + i;
                                let scol = shared_col(caching, logical / p, logical % p, p, rk);
                                xs_b[mi * tk + scol] = yr[((tid * tm + mi) * rk + i) * rq + qq];
                                if tracer.is_some() {
                                    s_addrs.push((mi * tk + scol) * elem_bytes);
                                }
                            }
                            if let Some(t) = tracer.as_deref_mut() {
                                t.shared_access(Dir::Store, &s_addrs, elem_bytes);
                            }
                        }
                    }
                }
            }
            if let Some(t) = tracer.as_deref_mut() {
                t.barrier();
            }
            std::mem::swap(&mut xs_a, &mut xs_b);
            let _ = fi;
        }

        // ---- StoreFusedShMem (paper Figure 7) ----
        let xg_slices = self.k / p;
        let xs_slices = tk / p;
        let pn = p.pow(nfused as u32);
        let xg_fuse = self.k / pn;
        let xs_fuse = tk / pn;
        let mut e0 = 0;
        while e0 < tm * tk {
            let todo = (tm * tk - e0).min(bdim);
            for w0 in (0..todo).step_by(warp) {
                let lanes = (todo - w0).min(warp);
                g_addrs.clear();
                s_addrs.clear();
                for l in 0..lanes {
                    let e = e0 + w0 + l;
                    let (mi, c) = (e / tk, e % tk);
                    let grow = bx * tm + mi;
                    if grow >= self.m {
                        continue;
                    }
                    // Scale shared slice / fused-slice indices to global.
                    let slice = (c / xs_slices) * xg_slices;
                    let fused_slice = ((c % xs_slices) / xs_fuse) * xg_fuse;
                    let elem = by * xs_fuse + c % xs_fuse;
                    let col = slice + fused_slice + elem;
                    let scol = shared_col(caching, c / p, c % p, p, rk);
                    let v = xs_a[mi * tk + scol];
                    let gidx = grow * self.k + col;
                    y.write(gidx, v);
                    if tracer.is_some() {
                        s_addrs.push((mi * tk + scol) * elem_bytes);
                        g_addrs.push(gidx * elem_bytes);
                    }
                }
                if let Some(t) = tracer.as_deref_mut() {
                    t.shared_access(Dir::Load, &s_addrs, elem_bytes);
                    t.global_access(Dir::Store, &g_addrs, elem_bytes);
                }
            }
            e0 += bdim;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::sliced_multiply;
    use crate::tile::Caching;
    use gpu_sim::device::V100;
    use kron_core::assert_matrices_close;

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + 3 * r * cols + c) % 7) as f64 - 3.0
        })
    }

    fn fused_cfg(tm: usize, tk: usize, p: usize, rk: usize, rq: usize, rp: usize) -> TileConfig {
        TileConfig {
            tm,
            tk,
            tq: p,
            tp: p,
            rk,
            rq,
            rp,
            caching: Caching::Shift,
        }
    }

    /// Oracle: apply `nfused` successive sliced multiplies.
    fn oracle(x: &Matrix<f64>, factors: &[&Matrix<f64>]) -> Matrix<f64> {
        let mut y = x.clone();
        for f in factors {
            y = sliced_multiply(&y, f).unwrap();
        }
        y
    }

    #[test]
    fn figure6_geometry() {
        // Paper Figure 6: X 1×256, F 4×4, TK = 128, Nfused = 2.
        let x = seq_matrix(1, 256, 1);
        let f3 = seq_matrix(4, 4, 2);
        let f4 = seq_matrix(4, 4, 5);
        let factors = [&f4, &f3];
        let kern = FusedKernel::new(fused_cfg(1, 128, 4, 2, 2, 2), 1, 256, &factors).unwrap();
        assert_eq!(kern.grid(), (1, 2));
        let y = kern.run_all(&x).unwrap();
        assert_matrices_close(&y, &oracle(&x, &factors), "figure-6 fused");
    }

    #[test]
    fn max_depth_fusion() {
        // TK = 64 = 4³ → fuse three 4×4 factors.
        let x = seq_matrix(2, 256, 3);
        let fs: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(4, 4, i * 3 + 1)).collect();
        let factors: Vec<&Matrix<f64>> = fs.iter().collect();
        let kern = FusedKernel::new(fused_cfg(1, 64, 4, 1, 2, 2), 2, 256, &factors).unwrap();
        let y = kern.run_all(&x).unwrap();
        assert_matrices_close(&y, &oracle(&x, &factors), "3-deep fusion");
    }

    #[test]
    fn single_block_whole_problem() {
        // TK = K: one block per row, everything in shared memory.
        let x = seq_matrix(3, 64, 7);
        let fs: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(8, 8, i + 2)).collect();
        let factors: Vec<&Matrix<f64>> = fs.iter().collect();
        let kern = FusedKernel::new(fused_cfg(1, 64, 8, 2, 4, 4), 3, 64, &factors).unwrap();
        let y = kern.run_all(&x).unwrap();
        assert_matrices_close(&y, &oracle(&x, &factors), "TK = K fusion");
    }

    #[test]
    fn tm_greater_than_one() {
        let x = seq_matrix(4, 128, 5);
        let fs: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i * 5 + 3)).collect();
        let factors: Vec<&Matrix<f64>> = fs.iter().collect();
        let kern = FusedKernel::new(fused_cfg(2, 32, 4, 2, 2, 2), 4, 128, &factors).unwrap();
        let y = kern.run_all(&x).unwrap();
        assert_matrices_close(&y, &oracle(&x, &factors), "TM = 2 fusion");
    }

    #[test]
    fn partial_row_block() {
        let x = seq_matrix(3, 64, 2);
        let fs: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 4)).collect();
        let factors: Vec<&Matrix<f64>> = fs.iter().collect();
        let kern = FusedKernel::new(fused_cfg(2, 16, 4, 1, 2, 2), 3, 64, &factors).unwrap();
        let y = kern.run_all(&x).unwrap();
        assert_matrices_close(&y, &oracle(&x, &factors), "partial TM fusion");
    }

    #[test]
    fn validation_rejects_bad_fusion() {
        let f = seq_matrix(4, 4, 0);
        let g = seq_matrix(8, 8, 0);
        let r = seq_matrix(4, 2, 0);
        // Mixed shapes.
        let factors: Vec<&Matrix<f64>> = vec![&f, &g];
        assert!(FusedKernel::new(fused_cfg(1, 64, 4, 1, 2, 2), 1, 256, &factors).is_err());
        // Non-square.
        let factors2: Vec<&Matrix<f64>> = vec![&r, &r];
        assert!(FusedKernel::new(fused_cfg(1, 64, 4, 1, 2, 2), 1, 256, &factors2).is_err());
        // TK too small for the fusion depth: TK = 16 < 4³.
        let fs: Vec<Matrix<f64>> = (0..3).map(|_| seq_matrix(4, 4, 1)).collect();
        let factors3: Vec<&Matrix<f64>> = fs.iter().collect();
        assert!(FusedKernel::new(fused_cfg(1, 16, 4, 1, 2, 2), 1, 256, &factors3).is_err());
        // TP ≠ P.
        let mut c = fused_cfg(1, 64, 4, 1, 2, 2);
        c.tp = 2;
        let factors4: Vec<&Matrix<f64>> = vec![&f, &f];
        assert!(FusedKernel::new(c, 1, 256, &factors4).is_err());
        // Empty factor list.
        let none: Vec<&Matrix<f64>> = vec![];
        assert!(FusedKernel::new(fused_cfg(1, 64, 4, 1, 2, 2), 1, 256, &none).is_err());
    }

    #[test]
    fn fused_halves_global_traffic_vs_two_launches() {
        // The §4.2 claim: per block the fused kernel reads TK and writes TK
        // once, while two separate launches would do it twice.
        let f = Matrix::<f32>::from_fn(4, 4, |_, _| 1.0);
        let factors = [&f, &f];
        let fused = FusedKernel::new(
            TileConfig {
                tm: 1,
                tk: 256,
                tq: 4,
                tp: 4,
                rk: 2,
                rq: 2,
                rp: 2,
                caching: Caching::Shift,
            },
            1,
            256,
            &factors,
        )
        .unwrap();
        let mut tracer = Tracer::new(&V100);
        let stats = fused.trace_block(&mut tracer);
        // X read once (256 f32 = 32 sectors) + factor loads (tiny);
        // output written once (32 sectors).
        assert!(
            stats.gmem_load_sectors < 48,
            "loads {}",
            stats.gmem_load_sectors
        );
        assert_eq!(stats.gmem_store_sectors, 32);
        // Two unfused launches of the same work would cost ≥ 2× stores.
        assert_eq!(stats.flops, 2 * 2 * 256 * 4);
    }

    #[test]
    fn trace_deterministic() {
        let f = seq_matrix(4, 4, 1);
        let factors = [&f, &f];
        let kern = FusedKernel::new(fused_cfg(1, 64, 4, 2, 2, 2), 2, 256, &factors).unwrap();
        let mut t1 = Tracer::new(&V100);
        let mut t2 = Tracer::new(&V100);
        assert_eq!(kern.trace_block(&mut t1), kern.trace_block(&mut t2));
    }
}
