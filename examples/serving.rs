//! Serving: run the persistent `kron-runtime` over a stream of small-M
//! requests — the Table 3/4-style traffic (GP inference, graph kernels)
//! that single executes underuse hardware on — and watch the plan cache,
//! the cross-request batcher, and the queue-depth-1 inline bypass lane
//! do their work.
//!
//! The runtime is **dtype-erased**: one `Runtime` (no type parameter)
//! serves `f32` and `f64` models side by side through one pool of
//! scheduler lanes (two here — each lane is a service thread with its
//! own lock-free admission ring; models pin to lanes by plan shape) and
//! one plan cache. Models, tickets, and sessions stay typed — mixing
//! dtypes is just loading both kinds of model into the same runtime.
//!
//! Run with `cargo run --release --example serving`.

use fastkron::prelude::*;
use kron_core::shuffle::kron_matmul_shuffle;

fn main() {
    // ONE runtime for all traffic; `batch_linger_us` lets bursts coalesce
    // even on small hosts.
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 128,
        batch_max_m: 16,
        batch_linger_us: 200,
        // Two service lanes: each model's traffic pins to one lane by
        // plan shape, so one hot model can't starve the other's latency.
        scheduler_lanes: 2,
        ..RuntimeConfig::default()
    });

    // "Load the models once": an f32 GP-style kernel operator 8 ⊗ 8 ⊗ 8
    // and an f64 operator 4 ⊗ 4 — both served by the same runtime.
    let f32_factors: Vec<Matrix<f32>> = (0..3)
        .map(|i| Matrix::from_fn(8, 8, |r, c| ((i * 5 + r * 8 + c) % 11) as f32 - 5.0))
        .collect();
    let model32 = runtime
        .load_model(f32_factors.clone())
        .expect("valid model");
    let f64_factors: Vec<Matrix<f64>> = (0..2)
        .map(|i| Matrix::from_fn(4, 4, |r, c| ((i * 3 + r * 4 + c) % 7) as f64 - 3.0))
        .collect();
    let model64 = runtime
        .load_model(f64_factors.clone())
        .expect("valid model");
    println!(
        "one runtime, two models: f32 {}-factor (K={}) and f64 {}-factor (K={})",
        model32.num_factors(),
        model32.input_cols(),
        model64.num_factors(),
        model64.input_cols()
    );

    // Fire an interleaved burst of small-M requests of BOTH dtypes, then
    // collect: in-flight same-model requests are stacked row-wise into
    // large-M fused executes; the service order (priorities, deadlines,
    // arrival) spans both dtypes.
    let refs32: Vec<&Matrix<f32>> = f32_factors.iter().collect();
    let refs64: Vec<&Matrix<f64>> = f64_factors.iter().collect();
    let mut t32 = Vec::new();
    let mut o32 = Vec::new();
    let mut t64 = Vec::new();
    let mut o64 = Vec::new();
    for i in 0..64 {
        let m = 1 + i % 4; // M ∈ {1..4}: far too small to use a wide host alone
        if i % 2 == 0 {
            let x = Matrix::<f32>::from_fn(m, model32.input_cols(), |r, c| {
                ((i + 3 * r + c) % 7) as f32 - 3.0
            });
            o32.push(kron_matmul_shuffle(&x, &refs32).expect("oracle"));
            t32.push(runtime.submit(&model32, x).expect("submit"));
        } else {
            let x = Matrix::<f64>::from_fn(m, model64.input_cols(), |r, c| {
                ((i + 2 * r + c) % 9) as f64 - 4.0
            });
            o64.push(kron_matmul_shuffle(&x, &refs64).expect("oracle"));
            t64.push(runtime.submit(&model64, x).expect("submit"));
        }
    }
    for (i, (ticket, oracle)) in t32.into_iter().zip(&o32).enumerate() {
        let y = ticket.wait().expect("serve");
        assert_matrices_close(&y, oracle, &format!("f32 request {i}"));
    }
    for (i, (ticket, oracle)) in t64.into_iter().zip(&o64).enumerate() {
        let y = ticket.wait().expect("serve");
        assert_matrices_close(&y, oracle, &format!("f64 request {i}"));
    }
    println!("served and verified 64 interleaved f32/f64 burst requests");

    // Synchronous, allocation-free steady state: hold one typed session
    // per dtype against the same runtime; each recycles its buffers, and
    // after the first call of a shape no allocation happens anywhere in
    // the process per request — even with both dtypes in flight.
    let mut session32 = runtime.session::<f32>();
    let mut session64 = runtime.session::<f64>();
    let mut x32 = Matrix::<f32>::from_fn(4, model32.input_cols(), |r, c| (r + c) as f32);
    let mut y32 = Matrix::zeros(4, model32.output_cols());
    let mut x64 = Matrix::<f64>::from_fn(4, model64.input_cols(), |r, c| (r + 2 * c) as f64);
    let mut y64 = Matrix::zeros(4, model64.output_cols());
    for _ in 0..100 {
        (x32, y32) = session32
            .call(&model32, x32, y32)
            .expect("f32 session call");
        (x64, y64) = session64
            .call(&model64, x64, y64)
            .expect("f64 session call");
    }
    println!("two sessions served 200 recycled-buffer requests (100 per dtype)");

    // The two lanes, side by side on their receipts. A lone request on an
    // idle runtime takes the inline bypass lane: warm plan, empty queue,
    // so it executes on this thread — queue and linger both exactly 0µs.
    // A bursty pipelined submit falls back to the batching scheduler and
    // pays (and amortizes) the linger window.
    let x = Matrix::<f32>::from_fn(2, model32.input_cols(), |r, c| ((r + c) % 5) as f32);
    let t = runtime.submit(&model32, x.clone()).expect("submit");
    let (_, bypass_receipt) = t.wait_with_receipt().expect("bypassed serve");
    assert_eq!(bypass_receipt.timings.queue_us, 0);
    assert_eq!(bypass_receipt.timings.linger_us, 0);
    println!("\nbypass lane (queue depth 1):\n{bypass_receipt}");
    let burst: Vec<_> = (0..8)
        .map(|_| runtime.submit(&model32, x.clone()).expect("submit"))
        .collect();
    let mut batched_receipt = None;
    for t in burst {
        let (_, r) = t.wait_with_receipt().expect("batched serve");
        batched_receipt = Some(r);
    }
    println!(
        "batched lane (burst of 8):\n{}",
        batched_receipt.expect("burst served")
    );

    let stats = runtime.stats();
    println!(
        "stats: served={} (f32={}, f64={}; batched={} over {} fused executes, solo={}, \
         bypassed={}), plan cache hits/misses = {}/{}, resident entries={} (~{} KiB accounted)",
        stats.served,
        stats.requests_f32,
        stats.requests_f64,
        stats.batched_requests,
        stats.batches,
        stats.solo_requests,
        stats.bypassed_requests,
        stats.plan_hits,
        stats.plan_misses,
        stats.cached_entries,
        stats.cached_bytes / 1024,
    );
    // The lane topology, per lane: where each model pinned, how much
    // each service thread carried, and whether work-stealing kicked in.
    println!(
        "lane topology: {} lanes (f32 model -> lane {}, f64 model -> lane {})",
        stats.scheduler_lanes,
        runtime.lane_for(&model32),
        runtime.lane_for(&model64),
    );
    for (i, lane) in stats.lanes().iter().enumerate() {
        println!(
            "  lane {i}: served={} (batched={}, solo={}, bypassed={}, errors={}), \
             steals={}, inflight={}",
            lane.served,
            lane.batched_requests,
            lane.solo_requests,
            lane.bypassed_requests,
            lane.error_replies,
            lane.steals,
            lane.inflight,
        );
    }
    runtime.shutdown();
    println!("runtime drained and shut down");
}
