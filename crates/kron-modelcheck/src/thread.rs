//! Virtual threads: spawn/join/yield under the schedule explorer.
//!
//! Model threads are real OS threads, but only the baton holder runs;
//! `spawn` registers the child with the execution and the child parks
//! until first scheduled. `yield_now` is the explorer's spin-loop hint:
//! the yielding thread is deprioritized until every other schedulable
//! thread has had a chance to run.

use crate::exec::{
    set_ctx, with_ctx, Blocked, Ctx, Execution, ExplorerAbort, PointKind, ThreadState, VClock,
    MAX_THREADS,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread; `join` blocks the virtual thread
/// (schedulably) until the child finishes.
pub struct JoinHandle<T> {
    tid: usize,
    exec: Arc<Execution>,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Runs `body` as virtual thread `tid` of `exec`: parks until first
/// scheduled, reports panics as execution failures, and hands the baton
/// onward at exit.
pub(crate) fn run_virtual_thread<T: Send + 'static>(
    exec: Arc<Execution>,
    tid: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    body: impl FnOnce() -> T + Send + 'static,
) {
    set_ctx(Some(Ctx {
        exec: Arc::clone(&exec),
        tid,
    }));
    {
        let core = exec.lock();
        exec.park(core, tid);
    }
    let outcome = catch_unwind(AssertUnwindSafe(body));
    match outcome {
        Ok(v) => {
            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
        }
        Err(payload) => {
            if payload.downcast_ref::<ExplorerAbort>().is_none() {
                exec.record_panic(panic_message(payload.as_ref()));
            }
            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(payload));
        }
    }
    exec.finish_thread(tid);
    set_ctx(None);
}

// The park in `run_virtual_thread` can itself unwind with the abort
// sentinel before `body` runs; catch it at the OS-thread boundary so a
// torn-down execution never aborts the test process.
fn os_thread_entry<T: Send + 'static>(
    exec: Arc<Execution>,
    tid: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    body: impl FnOnce() -> T + Send + 'static,
) {
    let exec2 = Arc::clone(&exec);
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        run_virtual_thread(exec, tid, result, body)
    }));
    if let Err(payload) = outcome {
        // Only the sentinel unwinds past `run_virtual_thread`'s own
        // catch (it can escape from the initial park); mark finished so
        // the driver's done-accounting converges.
        debug_assert!(payload.downcast_ref::<ExplorerAbort>().is_some());
        exec2.finish_thread(tid);
        set_ctx(None);
    }
}

/// Spawns a virtual thread. The child inherits the parent's causal
/// clock; it becomes schedulable at the parent's next schedule point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    with_ctx(|ctx| {
        let tid;
        {
            let mut core = ctx.exec.lock();
            if core.threads.len() >= MAX_THREADS {
                drop(core);
                panic!("model spawned more than {MAX_THREADS} threads");
            }
            let mut clock = core.threads[ctx.tid].clock;
            clock.tick(ctx.tid);
            core.threads[ctx.tid].clock = clock;
            tid = core.threads.len();
            let mut child_clock = VClock::default();
            child_clock.join(&clock);
            child_clock.tick(tid);
            core.threads.push(ThreadState {
                clock: child_clock,
                blocked: Blocked::None,
                finished: false,
                yielded: false,
                timed_out: false,
            });
        }
        let result = Arc::new(Mutex::new(None));
        let exec = Arc::clone(&ctx.exec);
        let res2 = Arc::clone(&result);
        let os = std::thread::Builder::new()
            .name(format!("kron-model-{tid}"))
            .spawn(move || os_thread_entry(exec, tid, res2, f))
            .expect("spawning a model OS thread failed");
        JoinHandle {
            tid,
            exec: Arc::clone(&ctx.exec),
            result,
            os: Some(os),
        }
    })
}

impl<T> JoinHandle<T> {
    /// Blocks (schedulably) until the child finishes; propagates the
    /// child's panic like `std::thread::JoinHandle::join`.
    pub fn join(mut self) -> std::thread::Result<T> {
        with_ctx(|ctx| {
            assert!(
                Arc::ptr_eq(&ctx.exec, &self.exec),
                "joined a handle from a different model execution"
            );
            let mut core = ctx.exec.lock();
            if !core.threads[self.tid].finished {
                core.threads[ctx.tid].blocked = Blocked::Join(self.tid);
                let keep = Execution::choose(&mut core, Some(ctx.tid), PointKind::Block);
                if !keep {
                    ctx.exec.cv.notify_all();
                    ctx.exec.park(core, ctx.tid);
                }
            } else {
                let child = core.threads[self.tid].clock;
                core.threads[ctx.tid].clock.join(&child);
            }
        });
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined thread left no result")
    }
}

/// A voluntary yield — the model counterpart of `std::thread::yield_now`
/// and the required form for model-visible spin loops.
pub fn yield_now() {
    with_ctx(|ctx| {
        {
            let mut core = ctx.exec.lock();
            core.threads[ctx.tid].yielded = true;
        }
        ctx.exec.point(ctx.tid, PointKind::Yield);
    })
}
