//! Figure 10: speedup of FastKron over GPyTorch, COGENT, and cuTensor on
//! the 28 real-world Kron-Matmul sizes of Table 4.

use bench::table4_cases;
use gpu_sim::device::V100;
use kron_baselines::{CuTensorEngine, Engine, FastKronEngine, FtmmtEngine, ShuffleEngine};

fn main() {
    println!("Figure 10 — FastKron speedup on the real-world dataset of Table 4 (float)");
    println!(
        "{:>3}  {:<28} {:>12} {:>10} {:>10}",
        "id", "size", "vs GPyTorch", "vs COGENT", "vs cuTensor"
    );
    let fk = FastKronEngine::new(&V100);
    let gp = ShuffleEngine::new(&V100);
    let co = FtmmtEngine::new(&V100);
    let cu = CuTensorEngine::new(&V100);
    let mut min_s = [f64::INFINITY; 3];
    let mut max_s = [0.0f64; 3];
    for (id, problem) in table4_cases() {
        let t_fk = Engine::<f32>::simulate(&fk, &problem).unwrap().seconds;
        let t_gp = Engine::<f32>::simulate(&gp, &problem).unwrap().seconds;
        let t_co = Engine::<f32>::simulate(&co, &problem).unwrap().seconds;
        let t_cu = Engine::<f32>::simulate(&cu, &problem).unwrap().seconds;
        let s = [t_gp / t_fk, t_co / t_fk, t_cu / t_fk];
        for i in 0..3 {
            min_s[i] = min_s[i].min(s[i]);
            max_s[i] = max_s[i].max(s[i]);
        }
        println!(
            "{:>3}  {:<28} {:>11.2}x {:>9.2}x {:>9.2}x",
            id,
            problem.describe(),
            s[0],
            s[1],
            s[2]
        );
    }
    println!(
        "\nRanges: vs GPyTorch {:.2}x-{:.2}x | vs COGENT {:.2}x-{:.2}x | vs cuTensor {:.2}x-{:.2}x",
        min_s[0], max_s[0], min_s[1], max_s[1], min_s[2], max_s[2]
    );
    println!("Paper:  vs GPyTorch 5.70x-40.7x | vs COGENT 1.43x-8.14x | vs cuTensor 1.55x-6.45x");
}
