//! Batched conjugate gradients for `A Z = B` with a matrix-free operator.
//!
//! The GP training loop solves against `K_SKI` with a *batch* of
//! right-hand sides (the paper uses 16 probe vectors); every iteration's
//! dominant cost is one application of the operator, which for SKI is one
//! Kron-Matmul. Batches are stored as rows (`B[s × n]`), matching the
//! `X[M × K]` orientation the Kron engines expect.

use kron_core::{Element, KronError, Matrix, Result};

/// Outcome of a batched CG solve.
#[derive(Debug, Clone)]
pub struct CgResult<T> {
    /// Solution batch, rows are solutions.
    pub z: Matrix<T>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm per batch row.
    pub residuals: Vec<f64>,
}

/// Solves `A zᵢ = bᵢ` for every row `bᵢ` of `b`, where `apply(V)` computes
/// `A` applied to every row of `V`. `A` must be symmetric positive
/// definite.
///
/// Stops after `max_iters` or when every row's residual norm falls below
/// `tol · ‖bᵢ‖`.
///
/// # Errors
/// Propagates operator errors; rejects an operator that changes shapes.
pub fn batched_cg<T: Element>(
    apply: &mut dyn FnMut(&Matrix<T>) -> Result<Matrix<T>>,
    b: &Matrix<T>,
    max_iters: usize,
    tol: f64,
) -> Result<CgResult<T>> {
    let (s, n) = (b.rows(), b.cols());
    let mut z = Matrix::<T>::zeros(s, n);
    let mut r = b.clone();
    let mut p = b.clone();
    let mut rs_old: Vec<f64> = (0..s)
        .map(|i| r.row(i).iter().map(|v| v.to_f64() * v.to_f64()).sum())
        .collect();
    let b_norms: Vec<f64> = rs_old.iter().map(|v| v.sqrt()).collect();
    let mut iterations = 0;

    for _ in 0..max_iters {
        let converged = rs_old
            .iter()
            .zip(&b_norms)
            .all(|(&rs, &bn)| rs.sqrt() <= tol * bn.max(1e-300));
        if converged {
            break;
        }
        iterations += 1;
        let ap = apply(&p)?;
        if ap.rows() != s || ap.cols() != n {
            return Err(KronError::ShapeMismatch {
                expected: format!("{s}×{n} operator output"),
                found: format!("{}×{}", ap.rows(), ap.cols()),
            });
        }
        for i in 0..s {
            let p_row = p.row(i);
            let ap_row = ap.row(i);
            let p_ap: f64 = p_row
                .iter()
                .zip(ap_row)
                .map(|(a, b)| a.to_f64() * b.to_f64())
                .sum();
            if p_ap.abs() < 1e-300 {
                continue;
            }
            let alpha = rs_old[i] / p_ap;
            let alpha_t = T::from_f64(alpha);
            // z += α p; r -= α Ap — row-local updates.
            for j in 0..n {
                let pv = p[(i, j)];
                let apv = ap[(i, j)];
                z[(i, j)] += alpha_t * pv;
                r[(i, j)] -= alpha_t * apv;
            }
            let rs_new: f64 = r.row(i).iter().map(|v| v.to_f64() * v.to_f64()).sum();
            let beta = T::from_f64(rs_new / rs_old[i]);
            for j in 0..n {
                let rv = r[(i, j)];
                p[(i, j)] = rv + beta * p[(i, j)];
            }
            rs_old[i] = rs_new;
        }
    }

    Ok(CgResult {
        z,
        iterations,
        residuals: rs_old.iter().map(|v| v.sqrt()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::gemm::gemm;

    /// SPD test matrix: Aᵀ A + n·I.
    fn spd(n: usize, seed: usize) -> Matrix<f64> {
        let a = Matrix::from_fn(n, n, |r, c| ((seed + r * n + c) % 7) as f64 - 3.0);
        let mut m = gemm(&a.transpose(), &a).unwrap();
        for i in 0..n {
            m[(i, i)] += n as f64;
        }
        m
    }

    #[test]
    fn solves_spd_system() {
        let n = 12;
        let a = spd(n, 3);
        let b = Matrix::from_fn(4, n, |r, c| ((r * n + c) % 5) as f64 - 2.0);
        let mut apply = |v: &Matrix<f64>| gemm(v, &a.transpose());
        let res = batched_cg(&mut apply, &b, 200, 1e-12).unwrap();
        // Check residual A z = b row-wise.
        let az = gemm(&res.z, &a.transpose()).unwrap();
        for i in 0..4 {
            for j in 0..n {
                assert!(
                    (az[(i, j)] - b[(i, j)]).abs() < 1e-6,
                    "residual at ({i},{j}): {} vs {}",
                    az[(i, j)],
                    b[(i, j)]
                );
            }
        }
        assert!(res.iterations <= n + 2);
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let b = Matrix::from_fn(2, 8, |r, c| (r + c) as f64);
        let mut apply = |v: &Matrix<f64>| Ok(v.clone());
        let res = batched_cg(&mut apply, &b, 50, 1e-14).unwrap();
        assert_eq!(res.iterations, 1);
        kron_core::assert_matrices_close(&res.z, &b, "identity solve");
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let b = Matrix::<f64>::zeros(3, 6);
        let mut apply = |v: &Matrix<f64>| Ok(v.clone());
        let res = batched_cg(&mut apply, &b, 50, 1e-14).unwrap();
        assert_eq!(res.iterations, 0);
        assert!(res.residuals.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn respects_iteration_cap() {
        let n = 32;
        let a = spd(n, 1);
        let b = Matrix::from_fn(1, n, |_, c| c as f64);
        let mut apply = |v: &Matrix<f64>| gemm(v, &a.transpose());
        let res = batched_cg(&mut apply, &b, 3, 1e-16).unwrap();
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn rejects_shape_changing_operator() {
        let b = Matrix::<f64>::from_fn(2, 4, |r, c| (r + c) as f64 + 1.0);
        let mut apply = |_: &Matrix<f64>| Ok(Matrix::<f64>::zeros(2, 5));
        assert!(batched_cg(&mut apply, &b, 5, 1e-10).is_err());
    }
}
