//! Ablation: shift vs direct caching — simulated kernel time and
//! bank-conflict factors, plus the wall-clock cost of the traced
//! emulation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use fastkron_core::kernel::SlicedMultiplyKernel;
use fastkron_core::{Caching, TileConfig};
use gpu_sim::device::V100;
use gpu_sim::trace::Tracer;
use kron_core::Matrix;
use std::hint::black_box;

fn bench_caching(c: &mut Criterion) {
    let f = Matrix::<f32>::from_fn(8, 8, |r, q| ((r * 8 + q) % 5) as f32);
    let mut group = c.benchmark_group("caching_trace");
    group.sample_size(10);
    for caching in [Caching::Shift, Caching::Direct] {
        let cfg = TileConfig {
            tm: 1,
            tk: 2048,
            tq: 8,
            tp: 8,
            rk: 4,
            rq: 2,
            rp: 2,
            caching,
        };
        let kern = SlicedMultiplyKernel::new(cfg, 1, 2048, &f).unwrap();
        let name = format!("{caching:?}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut tracer = Tracer::new(&V100);
                black_box(kern.trace_block(&mut tracer))
            })
        });
        // Print the conflict factor once per scheme for the report.
        let mut tracer = Tracer::new(&V100);
        let stats = kern.trace_block(&mut tracer);
        eprintln!(
            "[caching ablation] {caching:?}: {} load transactions (conflict factor {:.2})",
            stats.smem_load_transactions,
            stats.bank_conflict_factor()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_caching);
criterion_main!(benches);
