//! The persistent sharded execution engine: Algorithm 2 as a caller-owned
//! workspace instead of a per-call plan.
//!
//! [`crate::DistFastKron::execute`] plans, allocates, and spawns threads on
//! every call — fine for one-shot runs, fatal for a serving runtime that
//! promises zero steady-state allocations per request. A [`ShardedEngine`]
//! front-loads all of that at construction:
//!
//! * **Persistent simulated devices** — one OS thread per GPU of the
//!   `{GM, GK}` grid, parked on a command channel for the engine's
//!   lifetime. An execute costs one command send per device, never a
//!   thread spawn.
//! * **Caller-owned batch buffers** — devices gather their `TGM × TGK`
//!   block straight out of the caller's row-major input and scatter their
//!   final block straight into the caller's output; the engine itself
//!   never holds the full `M × K` operands.
//! * **Recycled exchange buffers** — the grouped all-to-all
//!   (`StoreGPUTile`) sends parts in `Vec` buffers that the receiver
//!   returns to the sender over a second fabric after placing them, so a
//!   warmed engine's relocation rounds allocate nothing.
//! * **Fault isolation** — a panic on a simulated device (injected via
//!   [`ShardedEngine::inject_fault`] or a genuine kernel bug) is caught on
//!   that device; the device then degrades to *protocol completion* mode,
//!   still forwarding its (stale) exchange parts so peers' message counts
//!   stay balanced and the fabric never hangs. The batch fails with
//!   [`KronError::DeviceFailure`] naming the device; the engine stays
//!   consistent for later batches.
//! * **Slow-device watchdog** — [`ShardedEngine::inject_stall`] parks a
//!   device at the top of its next batch until the coordinator releases
//!   it. The coordinator times the stall on a caller-injected clock (see
//!   [`Watchdog`]): a stall within the watchdog budget is released on
//!   schedule and the batch succeeds (a latency blip); a stall past the
//!   budget is released *at* the budget and the batch fails with a
//!   bounded [`KronError::DeviceTimeout`] — a hung device can never hang
//!   the engine. Either way every device's `Done` is collected, so the
//!   fabric stays balanced.
//!
//! The local multiply steps run [`fastkron_core::sliced_multiply_rows_into`]
//! — the exact microkernel of the single-device fused path — so sharded
//! results agree **bit-for-bit** with every single-device engine on
//! integer-valued data (and to the usual FMA rounding elsewhere).

use crate::fabric::{CommModel, Fabric, GpuGrid};
use crate::fastkron::{dist_shape, simulate_sharded, DistShape};
use crossbeam::channel::{unbounded, Receiver, Sender};
use fastkron_core::{sliced_multiply_rows_into, PackPanel};
use gpu_sim::device::DeviceSpec;
use gpu_sim::{ExecReport, ExecSummary};
use kron_core::{Element, KronError, KronProblem, Matrix, Result};
use std::cell::OnceCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

/// Process-wide count of live simulated-device worker threads, across all
/// [`ShardedEngine`]s. Incremented as each worker is spawned and
/// decremented after it is joined, so once any engine's `Drop` returns the
/// count is exact — the probe runtime-lifecycle tests use to assert that
/// evicting a sharded plan-cache entry really tears its `GM·GK` workers
/// down (and that a capacity-bounded cache never holds more engines than
/// its limit).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of simulated-device worker threads currently alive in this
/// process (see [`LIVE_WORKERS`]). Tests that assert on this should
/// serialize against other engine-creating tests in the same binary.
pub fn live_sim_worker_threads() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// Upper bound a device waits on a fabric receive before declaring the
/// sending peer lost. Normal exchanges complete in microseconds (the
/// bound only has to outlast a peer's local compute on a loaded host), so
/// this never fires in healthy operation; it exists so that a peer that
/// died mid-protocol (an engine bug escaping the compute guards) degrades
/// into a bounded-latency `DeviceFailure` instead of a permanent hang.
const FABRIC_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Real-time granularity of the watchdog's completion poll while a stall
/// is armed: the coordinator alternates between checking the injected
/// clock and a bounded `done_rx` receive so that manual-clock tests (where
/// virtual time only moves when the test advances it) still make progress.
const WATCHDOG_POLL: Duration = Duration::from_micros(200);

/// Clock bridge for the slow-device watchdog. The engine itself is
/// clock-free; its owner (the serving runtime, or a test) injects its
/// timeline as a `now_us` closure plus a timeout budget, so watchdog
/// verdicts are deterministic under a manual clock.
pub struct Watchdog {
    timeout_us: u64,
    now_us: Box<dyn Fn() -> u64 + Send>,
}

impl Watchdog {
    /// A watchdog declaring [`KronError::DeviceTimeout`] after
    /// `timeout_us` on the timeline `now_us` reads.
    pub fn new(timeout_us: u64, now_us: Box<dyn Fn() -> u64 + Send>) -> Self {
        Watchdog { timeout_us, now_us }
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("timeout_us", &self.timeout_us)
            .finish_non_exhaustive()
    }
}

/// One execution command broadcast to every simulated device. The raw
/// pointers stay valid because [`ShardedEngine::execute_rows`] blocks until
/// every device reports done.
struct Cmd<T> {
    x: *const T,
    y: *mut T,
    factors: *const *const Matrix<T>,
    n_factors: usize,
    /// Total rows this call (a multiple of `GM`).
    rows: usize,
    /// Row stride of both `x` and `y` (`K`; factors are square).
    k: usize,
    /// Device id to fault-inject on, or `usize::MAX` for none.
    fault: usize,
    /// Device id to stall at batch start, or `usize::MAX` for none. The
    /// stalled device parks on its resume channel until the coordinator's
    /// watchdog releases it.
    stall: usize,
}

impl<T> Clone for Cmd<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Cmd<T> {}

// SAFETY: the pointers are only dereferenced while the coordinator is
// blocked in `execute_rows`, which keeps the referents borrowed; each
// device reads/writes only its own disjoint block of `y`.
unsafe impl<T: Element> Send for Cmd<T> {}

/// Completion report from one simulated device.
struct Done {
    gpu: usize,
    /// `None` on success; the captured panic / error message otherwise.
    failure: Option<String>,
}

/// Persistent state of one simulated device thread.
struct Worker<T: Element> {
    bm: usize,
    bk: usize,
    me: usize,
    gm: usize,
    gk: usize,
    p: usize,
    tgk: usize,
    nlocal: usize,
    cmd_rx: Receiver<Cmd<T>>,
    done_tx: Sender<Done>,
    /// Release channel for an injected stall; closed channels release
    /// immediately, so engine teardown can never deadlock on a stalled
    /// device.
    resume_rx: Receiver<()>,
    /// Data fabric senders to row peers, indexed by destination column
    /// (`None` at our own column).
    data_tx: Vec<Option<Sender<Vec<T>>>>,
    /// Data fabric receivers from row peers, indexed by source column.
    data_rx: Vec<Option<Receiver<Vec<T>>>>,
    /// Buffer-return senders back to the part's original sender.
    recycle_tx: Vec<Option<Sender<Vec<T>>>>,
    /// Buffer returns coming back from peers we sent parts to.
    recycle_rx: Vec<Option<Receiver<Vec<T>>>>,
    /// Ping-pong block buffers (`TGM_cap × TGK`, row stride `tgk`).
    local: Vec<T>,
    next: Vec<T>,
    /// Freelist of exchange part buffers (refilled from `recycle_rx`).
    free: Vec<Vec<T>>,
    panel: PackPanel<T>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unidentified panic payload".to_string()
    }
}

impl<T: Element> Worker<T> {
    fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            // Belt and braces: a panic escaping `serve` (an engine bug in
            // gather/scatter/exchange, not simulated-kernel compute) still
            // reports done, so the coordinator cannot hang on *this*
            // device. Row peers blocked on a part this device never sent
            // unblock via `FABRIC_RECV_TIMEOUT` and report their own
            // failure, so every device's `Done` arrives in bounded time.
            // The fabric may then hold stale parts; the caller must
            // discard the engine (the runtime evicts on `DeviceFailure`).
            let done = match catch_unwind(AssertUnwindSafe(|| self.serve(&cmd))) {
                Ok(done) => done,
                Err(p) => Done {
                    gpu: self.me,
                    failure: Some(format!("device thread fault: {}", panic_message(p))),
                },
            };
            let _ = self.done_tx.send(done);
        }
    }

    fn serve(&mut self, cmd: &Cmd<T>) -> Done {
        if cmd.stall == self.me {
            // Simulated slow device: park until the coordinator's watchdog
            // releases us — on schedule for a tolerable stall, at the
            // timeout verdict for an excessive one. A closed channel
            // (engine teardown) releases immediately.
            let _ = self.resume_rx.recv();
        }
        let tgm = cmd.rows / self.gm;
        let (k, tgk) = (cmd.k, self.tgk);
        // SAFETY: the coordinator blocks until we send `Done`, keeping the
        // operands borrowed; reads are shared, and our writes go only to
        // this device's `(bm, bk)` block, which no other device touches.
        let x = unsafe { std::slice::from_raw_parts(cmd.x, cmd.rows * k) };
        let factors: &[&Matrix<T>] =
            unsafe { std::slice::from_raw_parts(cmd.factors.cast(), cmd.n_factors) };

        // Gather this device's TGM × TGK block.
        for r in 0..tgm {
            self.local[r * tgk..r * tgk + tgk]
                .copy_from_slice(&x[(self.bm * tgm + r) * k + self.bk * tgk..][..tgk]);
        }

        let mut failure: Option<String> = None;
        if cmd.fault == self.me {
            // The injected fault is a genuine unwound panic, caught exactly
            // where a kernel bug would be.
            let payload = catch_unwind(|| panic!("injected device fault")).unwrap_err();
            failure = Some(panic_message(payload));
        }

        // Algorithm 2: groups of Nlocal local sliced multiplies, one
        // relocation round after each group. A failed device skips the
        // compute but still runs every relocation round so the fabric's
        // message counts stay balanced — peers never hang on it.
        let mut remaining = cmd.n_factors;
        let mut fidx = cmd.n_factors;
        while remaining > 0 {
            let nl = self.nlocal.min(remaining);
            if failure.is_none() {
                let local = &mut self.local;
                let next = &mut self.next;
                let panel = &mut self.panel;
                let res = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                    for j in 0..nl {
                        sliced_multiply_rows_into(
                            local,
                            tgk,
                            factors[fidx - 1 - j],
                            tgm,
                            tgk,
                            next,
                            tgk,
                            panel,
                        )?;
                        std::mem::swap(local, next);
                    }
                    Ok(())
                }));
                match res {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => failure = Some(e.to_string()),
                    Err(p) => failure = Some(panic_message(p)),
                }
            }
            fidx -= nl;
            remaining -= nl;
            if self.gk > 1 {
                if let Err(e) = self.exchange(tgm, nl, k) {
                    // The fabric itself broke (a peer vanished): stop the
                    // protocol — the engine is unusable and must be
                    // discarded, which the DeviceFailure reply triggers.
                    failure.get_or_insert(e);
                    break;
                }
            }
        }

        if failure.is_none() {
            // SAFETY: see above — disjoint block writes, operands pinned.
            let y = unsafe { std::slice::from_raw_parts_mut(cmd.y, cmd.rows * k) };
            for r in 0..tgm {
                y[(self.bm * tgm + r) * k + self.bk * tgk..][..tgk]
                    .copy_from_slice(&self.local[r * tgk..r * tgk + tgk]);
            }
        }
        Done {
            gpu: self.me,
            failure,
        }
    }

    /// One relocation round (`StoreGPUTile`): split the local intermediate
    /// into `GK` parts, exchange them within the row over recycled
    /// buffers, and place received parts at their canonical positions.
    ///
    /// # Errors
    /// A message describing the lost peer when a fabric receive times out
    /// or disconnects — the caller abandons the protocol and the engine.
    fn exchange(&mut self, tgm: usize, nl: usize, k: usize) -> std::result::Result<(), String> {
        let (gk, tgk) = (self.gk, self.tgk);
        let part_cols = tgk / gk;

        // Reclaim buffers peers finished with in earlier rounds.
        for dst in 0..gk {
            if let Some(rx) = &self.recycle_rx[dst] {
                while let Ok(buf) = rx.try_recv() {
                    self.free.push(buf);
                }
            }
        }

        // Send part `dst` to GPU (bm, dst); sends never block (unbounded).
        for dst in 0..gk {
            if dst == self.bk {
                continue;
            }
            // The seeded freelist makes the pop succeed in steady state;
            // the fallback allocates the full part in one shot so even a
            // pathological interleaving costs one allocation, not an
            // amortized-growth series.
            let mut buf = self
                .free
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(tgm * part_cols));
            buf.clear();
            for r in 0..tgm {
                buf.extend_from_slice(&self.local[r * tgk + dst * part_cols..][..part_cols]);
            }
            let _ = self.data_tx[dst].as_ref().expect("row peer").send(buf);
        }

        // Layout scales (paper Figure 8; identical in structure to
        // StoreFusedShMem with the GPU in place of the thread block).
        let pn = self.p.pow(nl as u32);
        let xl_s = tgk / self.p;
        let xg_s = k / self.p;
        let xl_f = tgk / pn;
        let xg_f = k / pn;
        let my_base = self.bk * tgk;
        // j = index in the source GPU's full local buffer.
        let col_of = |src_rank: usize, jp: usize| {
            let j = self.bk * part_cols + jp;
            (j / xl_s) * xg_s + ((j % xl_s) / xl_f) * xg_f + src_rank * xl_f + (j % xl_f)
        };

        // Own part placed directly out of `local`.
        for r in 0..tgm {
            for jp in 0..part_cols {
                self.next[r * tgk + col_of(self.bk, jp) - my_base] =
                    self.local[r * tgk + self.bk * part_cols + jp];
            }
        }

        for src in 0..gk {
            if src == self.bk {
                continue;
            }
            let part = self.data_rx[src]
                .as_ref()
                .expect("row peer")
                .recv_timeout(FABRIC_RECV_TIMEOUT)
                .map_err(|e| format!("lost peer at column {src} during exchange: {e:?}"))?;
            for r in 0..tgm {
                let row = &part[r * part_cols..(r + 1) * part_cols];
                for (jp, &v) in row.iter().enumerate() {
                    self.next[r * tgk + col_of(src, jp) - my_base] = v;
                }
            }
            // Hand the buffer back to its sender for the next round.
            let _ = self.recycle_tx[src].as_ref().expect("row peer").send(part);
        }
        std::mem::swap(&mut self.local, &mut self.next);
        Ok(())
    }
}

/// A persistent Algorithm 2 engine over a simulated `{GM, GK}` GPU grid:
/// planned once for a row capacity, executable many times against
/// caller-owned buffers with zero steady-state allocations.
///
/// Built via [`crate::DistFastKron::workspace`] (or [`ShardedEngine::new`]).
/// See the module docs for the worker/fabric architecture.
pub struct ShardedEngine<T: Element> {
    grid: GpuGrid,
    problem: KronProblem,
    #[allow(dead_code)]
    shape: DistShape,
    device: DeviceSpec,
    comm: CommModel,
    /// Simulated report for a capacity-rows execute, priced lazily on
    /// first use — a one-shot functional execute never pays the autotuner
    /// sweep. Inner `None` when the cost model cannot cover the per-GPU
    /// block shape; execution still works, only pricing is unavailable.
    report: OnceCell<Option<ExecReport>>,
    cmd_txs: Vec<Sender<Cmd<T>>>,
    done_rx: Receiver<Done>,
    /// Per-device stall release channels, indexed by linear device id.
    resume_txs: Vec<Sender<()>>,
    pending_fault: Option<usize>,
    /// Armed slow-device injection: `(gpu, stall_us)`.
    pending_stall: Option<(usize, u64)>,
    watchdog: Option<Watchdog>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Element> std::fmt::Debug for ShardedEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("grid", &self.grid)
            .field("problem", &self.problem)
            .finish_non_exhaustive()
    }
}

impl<T: Element> ShardedEngine<T> {
    /// Plans the engine: validates shardability, spawns the device
    /// threads, and allocates every per-device buffer. `problem.m` is the
    /// row capacity (must be a multiple of the grid's `GM`).
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] when `problem` cannot shard over `grid`.
    pub fn new(
        device: &DeviceSpec,
        grid: GpuGrid,
        comm: CommModel,
        problem: &KronProblem,
    ) -> Result<Self> {
        let shape = dist_shape(grid, problem)?;
        let (gm, gk) = (grid.gm, grid.gk);
        let data: Fabric<Vec<T>> = Fabric::new(grid);
        let recycle: Fabric<Vec<T>> = Fabric::new(grid);
        let (done_tx, done_rx) = unbounded();
        let mut cmd_txs = Vec::with_capacity(gm * gk);
        let mut resume_txs: Vec<Option<Sender<()>>> = (0..gm * gk).map(|_| None).collect();
        let mut workers = Vec::with_capacity(gm * gk);
        for bm in 0..gm {
            for bk in 0..gk {
                let me = grid.id(bm, bk);
                let (cmd_tx, cmd_rx) = unbounded();
                cmd_txs.push(cmd_tx);
                let (resume_tx, resume_rx) = unbounded();
                resume_txs[me] = Some(resume_tx);
                let peer = |other: usize| (other != bk).then(|| grid.id(bm, other));
                let worker = Worker {
                    bm,
                    bk,
                    me,
                    gm,
                    gk,
                    p: shape.p,
                    tgk: shape.tgk,
                    nlocal: shape.nlocal,
                    cmd_rx,
                    done_tx: done_tx.clone(),
                    resume_rx,
                    data_tx: (0..gk)
                        .map(|d| peer(d).map(|id| data.sender(me, id)))
                        .collect(),
                    data_rx: (0..gk)
                        .map(|s| peer(s).map(|id| data.receiver(id, me)))
                        .collect(),
                    recycle_tx: (0..gk)
                        .map(|s| peer(s).map(|id| recycle.sender(me, id)))
                        .collect(),
                    recycle_rx: (0..gk)
                        .map(|d| peer(d).map(|id| recycle.receiver(id, me)))
                        .collect(),
                    local: vec![T::ZERO; shape.tgm * shape.tgk],
                    next: vec![T::ZERO; shape.tgm * shape.tgk],
                    // Pre-seed enough part buffers that exchanges never
                    // allocate in steady state, however the recycle sends
                    // and reclaim drains interleave: per relocation round
                    // a worker sends `gk-1` parts, and peers can lag a
                    // couple of rounds behind before the happens-before
                    // chain forces their recycles to be visible. An empty
                    // freelist here used to make the zero-allocation
                    // serving tests timing-dependent.
                    free: (0..4 * gk.saturating_sub(1))
                        .map(|_| Vec::with_capacity(shape.tgm * (shape.tgk / gk.max(1))))
                        .collect(),
                    panel: PackPanel::new(),
                };
                let handle = std::thread::Builder::new()
                    .name(format!("kron-sim-gpu-{me}"))
                    .spawn(move || worker.run())
                    .expect("spawn simulated device thread");
                LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
                workers.push(handle);
            }
        }
        Ok(ShardedEngine {
            grid,
            problem: problem.clone(),
            shape,
            device: device.clone(),
            comm,
            report: OnceCell::new(),
            cmd_txs,
            done_rx,
            resume_txs: resume_txs
                .into_iter()
                .map(|tx| tx.expect("every linear id visited"))
                .collect(),
            pending_fault: None,
            pending_stall: None,
            watchdog: None,
            workers,
        })
    }

    /// The grid this engine shards over.
    pub fn grid(&self) -> GpuGrid {
        self.grid
    }

    /// The capacity problem the engine was planned for (`m` = row
    /// capacity).
    pub fn problem(&self) -> &KronProblem {
        &self.problem
    }

    /// Row capacity (`problem().m`).
    pub fn capacity(&self) -> usize {
        self.problem.m
    }

    /// Number of parked simulated-device worker threads this engine owns
    /// (`GM · GK`); they live until the engine drops.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Simulated execution report for a capacity-rows execute, when the
    /// cost model covers the per-GPU block shape. Priced (autotuner sweep
    /// + block trace) on first call and cached for the engine's lifetime.
    pub fn report(&self) -> Option<&ExecReport> {
        self.report
            .get_or_init(|| {
                simulate_sharded::<T>(&self.device, self.grid, &self.comm, &self.problem).ok()
            })
            .as_ref()
    }

    /// `Copy` digest of [`Self::report`] for allocation-free attribution.
    pub fn summary(&self) -> Option<ExecSummary> {
        self.report().map(ExecReport::summary)
    }

    /// Arms a one-shot fault: the next [`Self::execute_rows`] raises a
    /// caught panic on device `gpu`, failing that batch with
    /// [`KronError::DeviceFailure`] while the engine and fabric stay
    /// consistent for later batches. Simulator instrumentation for
    /// fault-isolation tests and chaos drills.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] when `gpu` is outside the grid.
    pub fn inject_fault(&mut self, gpu: usize) -> Result<()> {
        if gpu >= self.grid.gpus() {
            return Err(KronError::InvalidGrid {
                reason: format!("device {gpu} outside a {} GPU grid", self.grid.gpus()),
            });
        }
        self.pending_fault = Some(gpu);
        Ok(())
    }

    /// Installs (or replaces) the slow-device watchdog. Required before
    /// [`Self::inject_stall`]; without a stall armed the watchdog is
    /// never consulted, so healthy executes stay on the zero-overhead
    /// blocking path.
    pub fn set_watchdog(&mut self, watchdog: Watchdog) {
        self.watchdog = Some(watchdog);
    }

    /// Arms a one-shot slow-device injection: on the next
    /// [`Self::execute_rows`], device `gpu` parks at batch start for
    /// `stall_us` of watchdog-clock time. A stall within the watchdog
    /// budget is a latency blip (the batch succeeds); a stall past it
    /// fails the batch with [`KronError::DeviceTimeout`] — the result
    /// must then be discarded, though the engine's fabric stays balanced.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] when `gpu` is outside the grid or no
    /// watchdog is installed (an unbudgeted stall could hang the engine).
    pub fn inject_stall(&mut self, gpu: usize, stall_us: u64) -> Result<()> {
        if gpu >= self.grid.gpus() {
            return Err(KronError::InvalidGrid {
                reason: format!("device {gpu} outside a {} GPU grid", self.grid.gpus()),
            });
        }
        if self.watchdog.is_none() {
            return Err(KronError::InvalidGrid {
                reason: "slow-device injection requires a watchdog (call set_watchdog)".into(),
            });
        }
        self.pending_stall = Some((gpu, stall_us));
        Ok(())
    }

    /// Computes the first `rows` rows of `Y = X · (F1 ⊗ … ⊗ FN)` sharded
    /// across the grid, where `rows` may be anything up to the planned
    /// capacity that is a multiple of `GM`, and `X`/`Y` hold **at least**
    /// `rows` rows. `rows == 0` is a no-op. Zero steady-state allocations.
    ///
    /// # Errors
    /// Shape mismatches against the capacity problem;
    /// [`KronError::InvalidGrid`] when `rows` does not shard;
    /// [`KronError::DeviceFailure`] when a simulated device panicked — the
    /// batch failed but the engine remains usable.
    pub fn execute_rows(
        &mut self,
        x: &Matrix<T>,
        factors: &[&Matrix<T>],
        y: &mut Matrix<T>,
        rows: usize,
    ) -> Result<()> {
        if factors.len() != self.problem.num_factors() {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} factors", self.problem.num_factors()),
                found: format!("{} factors", factors.len()),
            });
        }
        for (i, (f, s)) in factors.iter().zip(self.problem.factors.iter()).enumerate() {
            if f.rows() != s.p || f.cols() != s.q {
                return Err(KronError::ShapeMismatch {
                    expected: format!("factor {} of shape {s}", i + 1),
                    found: format!("{}×{}", f.rows(), f.cols()),
                });
            }
        }
        if rows > self.problem.m {
            return Err(KronError::ShapeMismatch {
                expected: format!("at most {} rows (engine capacity)", self.problem.m),
                found: format!("{rows} rows"),
            });
        }
        if !rows.is_multiple_of(self.grid.gm) {
            return Err(KronError::InvalidGrid {
                reason: format!("{rows} rows not divisible by GM = {}", self.grid.gm),
            });
        }
        let k = self.problem.input_cols();
        if x.rows() < rows || x.cols() != k {
            return Err(KronError::ShapeMismatch {
                expected: format!("X with ≥{rows} rows × {k}"),
                found: format!("X {}×{}", x.rows(), x.cols()),
            });
        }
        let l = self.problem.output_cols();
        if y.rows() < rows || y.cols() != l {
            return Err(KronError::ShapeMismatch {
                expected: format!("Y with ≥{rows} rows × {l}"),
                found: format!("Y {}×{}", y.rows(), y.cols()),
            });
        }
        if rows == 0 {
            return Ok(());
        }

        let fault = self.pending_fault.take().unwrap_or(usize::MAX);
        let stall = self.pending_stall.take();
        let cmd = Cmd {
            x: x.as_slice().as_ptr(),
            y: y.as_mut_slice().as_mut_ptr(),
            factors: factors.as_ptr().cast(),
            n_factors: factors.len(),
            rows,
            k,
            fault,
            stall: stall.map_or(usize::MAX, |(gpu, _)| gpu),
        };
        for tx in &self.cmd_txs {
            let _ = tx.send(cmd);
        }
        // Block until every device reports: this pins the Cmd pointers'
        // referents for the whole sharded execution. With a stall armed,
        // the coordinator doubles as the watchdog: it polls the injected
        // clock between bounded receives and releases the stalled device
        // either on schedule or at the budget's timeout verdict — every
        // Done is still collected, so the fabric stays balanced.
        let mut first_failure: Option<(usize, String)> = None;
        let mut timed_out: Option<(usize, u64)> = None;
        match stall {
            None => {
                for _ in 0..self.grid.gpus() {
                    let done = self.done_rx.recv().expect("device threads alive");
                    if let Some(reason) = done.failure {
                        let replace = first_failure.as_ref().is_none_or(|(g, _)| done.gpu < *g);
                        if replace {
                            first_failure = Some((done.gpu, reason));
                        }
                    }
                }
            }
            Some((gpu, stall_us)) => {
                let wd = self
                    .watchdog
                    .as_ref()
                    .expect("inject_stall requires watchdog");
                let start = (wd.now_us)();
                let release_at = start.saturating_add(stall_us);
                let deadline = start.saturating_add(wd.timeout_us);
                // Fire at whichever comes first: the scheduled release or
                // the watchdog's verdict.
                let (fire_at, verdict_is_timeout) = if release_at <= deadline {
                    (release_at, false)
                } else {
                    (deadline, true)
                };
                let mut released = false;
                let mut received = 0;
                while received < self.grid.gpus() {
                    if !released && (wd.now_us)() >= fire_at {
                        if verdict_is_timeout {
                            timed_out = Some((gpu, (wd.now_us)().saturating_sub(start)));
                        }
                        let _ = self.resume_txs[gpu].send(());
                        released = true;
                    }
                    match self.done_rx.recv_timeout(WATCHDOG_POLL) {
                        Ok(done) => {
                            if let Some(reason) = done.failure {
                                let replace =
                                    first_failure.as_ref().is_none_or(|(g, _)| done.gpu < *g);
                                if replace {
                                    first_failure = Some((done.gpu, reason));
                                }
                            }
                            received += 1;
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            unreachable!("device threads alive")
                        }
                    }
                }
            }
        }
        // A timeout verdict outranks any secondary failure: the stalled
        // device is the root cause and names the bounded wait.
        if let Some((gpu, waited_us)) = timed_out {
            return Err(KronError::DeviceTimeout { gpu, waited_us });
        }
        match first_failure {
            Some((gpu, reason)) => Err(KronError::DeviceFailure { gpu, reason }),
            None => Ok(()),
        }
    }
}

impl<T: Element> Drop for ShardedEngine<T> {
    fn drop(&mut self) {
        // Closing the command channels parks every worker out of its recv
        // loop; join for a clean teardown. The live-worker gauge drops
        // only after the join, so observers never see a joined thread
        // still counted. Resume channels close too, so a device parked in
        // an armed-but-never-executed stall can never block the join.
        self.cmd_txs.clear();
        self.resume_txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
            LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistFastKron;
    use fastkron_core::algorithm::kron_matmul_fastkron;
    use gpu_sim::device::V100;

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + 3 * r * cols + c) % 13) as f64 - 6.0
        })
    }

    fn engine_for(m: usize, p: usize, n: usize, gpus: usize) -> ShardedEngine<f64> {
        let problem = KronProblem::uniform(m, p, n).unwrap();
        DistFastKron::new(&V100, gpus)
            .unwrap()
            .workspace(&problem)
            .unwrap()
    }

    #[test]
    fn reusable_and_partial_rows_match_single_device_bit_for_bit() {
        let mut engine = engine_for(8, 4, 3, 4); // grid {2, 2}
        let fs: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(4, 4, 5 * i + 2)).collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        for rows in [8usize, 4, 2, 8] {
            let x = seq_matrix(8, 64, rows);
            let mut y = Matrix::zeros(8, 64);
            engine.execute_rows(&x, &refs, &mut y, rows).unwrap();
            let oracle = kron_matmul_fastkron(&x, &refs).unwrap();
            for r in 0..rows {
                assert_eq!(y.row(r), oracle.row(r), "row {r} of {rows}");
            }
        }
    }

    #[test]
    fn validates_rows_and_operands() {
        let mut engine = engine_for(8, 4, 2, 4);
        let fs: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let x = seq_matrix(8, 16, 0);
        let mut y = Matrix::zeros(8, 16);
        // rows above capacity / not a GM multiple / bad operand shapes.
        assert!(engine.execute_rows(&x, &refs, &mut y, 10).is_err());
        assert!(matches!(
            engine.execute_rows(&x, &refs, &mut y, 3),
            Err(KronError::InvalidGrid { .. })
        ));
        assert!(engine.execute_rows(&x, &refs[..1], &mut y, 4).is_err());
        let wrong = seq_matrix(8, 8, 0);
        assert!(engine.execute_rows(&wrong, &refs, &mut y, 4).is_err());
        let mut wrong_y = Matrix::zeros(8, 8);
        assert!(engine.execute_rows(&x, &refs, &mut wrong_y, 4).is_err());
        // rows == 0 is a no-op.
        engine.execute_rows(&x, &refs, &mut y, 0).unwrap();
        // A valid call still works after the rejected ones.
        engine.execute_rows(&x, &refs, &mut y, 8).unwrap();
    }

    #[test]
    fn injected_fault_fails_one_batch_then_recovers() {
        let mut engine = engine_for(8, 4, 3, 4);
        let fs: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(4, 4, 7 * i + 1)).collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let x = seq_matrix(8, 64, 3);
        let mut y = Matrix::zeros(8, 64);

        assert!(engine.inject_fault(99).is_err());
        engine.inject_fault(2).unwrap();
        let err = engine.execute_rows(&x, &refs, &mut y, 8).unwrap_err();
        match err {
            KronError::DeviceFailure { gpu, ref reason } => {
                assert_eq!(gpu, 2);
                assert!(reason.contains("injected device fault"), "{reason}");
            }
            other => panic!("expected DeviceFailure, got {other:?}"),
        }

        // The fault was one-shot and the fabric stayed balanced: the very
        // next batch on the same engine succeeds and is correct.
        engine.execute_rows(&x, &refs, &mut y, 8).unwrap();
        let oracle = kron_matmul_fastkron(&x, &refs).unwrap();
        assert_eq!(y.as_slice(), oracle.as_slice());
    }

    /// A deterministic watchdog timeline for single-threaded tests: every
    /// read advances virtual time by `step_us`, so the coordinator's poll
    /// loop observes time passing without a second thread driving it.
    fn ticking_clock(step_us: u64) -> Box<dyn Fn() -> u64 + Send> {
        let t = std::sync::atomic::AtomicU64::new(0);
        Box::new(move || t.fetch_add(step_us, Ordering::SeqCst))
    }

    #[test]
    fn stall_within_watchdog_budget_is_a_latency_blip() {
        let mut engine = engine_for(8, 4, 3, 4);
        let fs: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(4, 4, 7 * i + 1)).collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let x = seq_matrix(8, 64, 3);
        let mut y = Matrix::zeros(8, 64);

        engine.set_watchdog(Watchdog::new(10_000, ticking_clock(250)));
        engine.inject_stall(1, 500).unwrap();
        engine.execute_rows(&x, &refs, &mut y, 8).unwrap();
        let oracle = kron_matmul_fastkron(&x, &refs).unwrap();
        assert_eq!(y.as_slice(), oracle.as_slice());
    }

    #[test]
    fn stall_past_watchdog_budget_is_a_bounded_timeout() {
        let mut engine = engine_for(8, 4, 3, 4);
        let fs: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(4, 4, 2 * i + 3)).collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let x = seq_matrix(8, 64, 9);
        let mut y = Matrix::zeros(8, 64);

        engine.set_watchdog(Watchdog::new(1_000, ticking_clock(250)));
        engine.inject_stall(2, 50_000).unwrap();
        let err = engine.execute_rows(&x, &refs, &mut y, 8).unwrap_err();
        match err {
            KronError::DeviceTimeout { gpu, waited_us } => {
                assert_eq!(gpu, 2);
                assert!(waited_us >= 1_000, "waited {waited_us}us");
            }
            other => panic!("expected DeviceTimeout, got {other:?}"),
        }

        // Every Done was still collected (the verdict released the
        // stalled device), so the fabric stayed balanced and the very
        // next batch succeeds.
        engine.execute_rows(&x, &refs, &mut y, 8).unwrap();
        let oracle = kron_matmul_fastkron(&x, &refs).unwrap();
        assert_eq!(y.as_slice(), oracle.as_slice());
    }

    #[test]
    fn stall_injection_is_validated() {
        let mut engine = engine_for(8, 4, 2, 4);
        // No watchdog installed: an unbudgeted stall is refused.
        assert!(matches!(
            engine.inject_stall(1, 100),
            Err(KronError::InvalidGrid { .. })
        ));
        engine.set_watchdog(Watchdog::new(1_000, ticking_clock(100)));
        assert!(matches!(
            engine.inject_stall(99, 100),
            Err(KronError::InvalidGrid { .. })
        ));
        engine.inject_stall(3, 100).unwrap();
        // Dropping the engine with a stall still armed (never executed)
        // must not deadlock: resume channels close on teardown.
    }

    #[test]
    fn capacity_report_prorates() {
        let engine = engine_for(64, 16, 2, 4);
        let report = engine.report().expect("tunable block");
        assert!(report.seconds > 0.0);
        assert!(report.comm_bytes > 0);
        let summary = engine.summary().unwrap();
        assert_eq!(summary.comm_bytes, report.comm_bytes);
        let half = summary.prorated(32, 64);
        assert!((half.seconds - summary.seconds / 2.0).abs() < 1e-12);
    }
}
