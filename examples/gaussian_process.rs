//! Table 5 in miniature: train a SKI Gaussian process on a synthetic
//! dataset, verify the CG solve functionally, and compare simulated epoch
//! times of the vanilla-GPyTorch vs FastKron-integrated backends.
//!
//! Run with `cargo run --release --example gaussian_process`.

use fastkron::gp::train::{GpVariant, KronBackend, TrainTimer};
use fastkron::gp::{Dataset, InducingGrid, SkiGp, UciDataset};
use fastkron::prelude::*;
use kron_core::Matrix;

fn main() {
    // Functional: a small SKI-GP solve on synthetic "servo"-like data.
    let data = Dataset::synthesize_subsampled(UciDataset::Servo, 42, 120);
    let grid = InducingGrid::new(data.source.dims(), 4, 0.4).expect("grid");
    let gp = SkiGp::<f64>::new(grid, &data.features, 0.4).expect("model");
    let n = data.len();
    let mut b = Matrix::<f64>::zeros(1, n);
    for (j, &t) in data.targets.iter().enumerate() {
        b[(0, j)] = t;
    }
    let solve = gp.solve(&b, 100, 1e-8).expect("CG");
    println!(
        "SKI-GP solve on {} ({} pts, {} dims, grid 4^{}): {} CG iterations, residual {:.2e}",
        data.source.name(),
        n,
        data.source.dims(),
        data.source.dims(),
        solve.iterations,
        solve.residuals[0]
    );

    // Timing study: one Table 5 row.
    let timer = TrainTimer::new(&V100);
    let (ds, p) = (UciDataset::Yacht, 16);
    for variant in GpVariant::all() {
        let vanilla = timer
            .epoch_seconds::<f32>(ds, p, variant, KronBackend::GPyTorch)
            .unwrap();
        let fk1 = timer
            .epoch_seconds::<f32>(ds, p, variant, KronBackend::FastKron { gpus: 1 })
            .unwrap();
        let fk16 = timer
            .epoch_seconds::<f32>(ds, p, variant, KronBackend::FastKron { gpus: 16 })
            .unwrap();
        println!(
            "{} on yacht 16^6: vanilla {:.2} s | FastKron-1GPU {:.2} s ({:.1}x) | FastKron-16GPU {:.2} s ({:.1}x)",
            variant.name(),
            vanilla,
            fk1,
            vanilla / fk1,
            fk16,
            vanilla / fk16
        );
    }
}
