//! # kron-modelcheck — a hand-rolled loom-style concurrency model checker
//!
//! Deterministic interleaving exploration for the workspace's lock-free
//! serving core (the Vyukov ring in the crossbeam shim, the sleeper
//! handshake, `LaneGate`, the bypass CAS claim, the flight recorder's
//! seqlock). Vendored like the other shims — no registry access — and
//! modeled on [loom](https://crates.io/crates/loom)'s architecture:
//!
//! - **Virtual primitives.** [`sync::atomic`] atomics keep a per-location
//!   store history with vector clocks; a load may return *any* store not
//!   superseded for the loading thread under happens-before, so relaxed-
//!   memory staleness is an explorable branch, not a timing accident.
//!   [`sync::Mutex`]/[`sync::Condvar`]/[`thread`] are schedulable
//!   replacements with the `std` signatures, swapped in behind the
//!   `crossbeam::sync` facade under `--cfg kron_loom`.
//! - **Bounded-DFS schedule explorer.** [`model`] / [`Builder::check`]
//!   re-run the closure once per schedule, replaying a recorded decision
//!   path and advancing it depth-first. Preemptions are bounded
//!   CHESS-style ([`Builder::preemption_bound`]); within the bound the
//!   search is exhaustive. Above the branch/iteration budget the
//!   explorer degrades to seeded random walks instead of silently
//!   passing ([`Report::exhaustive`] says which you got).
//! - **Failure detection.** Model-code panics (assertions), deadlocks
//!   and lost wakeups (no schedulable thread), and over-spawning all
//!   abort the iteration and surface as a [`Failure`] naming the blocked
//!   threads.
//!
//! ## Model fidelity (deviations from C11, all conservative)
//!
//! - Modification order equals execution order; RMWs (and CAS failure
//!   loads) read the latest store.
//! - `compare_exchange_weak` never fails spuriously.
//! - Fences of every ordering join through one global fence clock — at
//!   least as strong as C11 `SeqCst` fences. A *dropped* fence is still
//!   strictly weaker, so lost-wakeup bugs from missing fences remain
//!   detectable (and the mutation suites prove they are).
//! - Bounded staleness: a thread may take at most two consecutive stale
//!   (non-newest) loads from one atomic before the model forces the
//!   coherence-newest store — real hardware propagates stores in finite
//!   time, and without the bound spin loops branch unboundedly.
//! - `UnsafeCell` data is untracked; protocol bugs surface through the
//!   guarding atomics (torn counters, duplicated values, lost wakeups).
//!
//! ## Example
//!
//! ```
//! use kron_modelcheck::{model, sync::atomic::{AtomicUsize, Ordering}, sync::Arc, thread};
//!
//! model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || { n2.fetch_add(1, Ordering::Relaxed); });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```

pub mod cell;
mod exec;
pub mod hint;
pub mod sync;
pub mod thread;

#[cfg(test)]
mod tests;

pub use exec::FailureKind;
use exec::{Execution, Mode, PathEntry};
use std::sync::{Arc, Mutex, OnceLock};

/// A failing execution: what went wrong, on which iteration, and how
/// deep the decision path was.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The failure class (panic, deadlock, over-spawn).
    pub kind: FailureKind,
    /// Human-readable description (panic message or blocked-thread list).
    pub message: String,
    /// 0-based execution index the failure was found on.
    pub iteration: u64,
    /// Decision-path length of the failing schedule.
    pub branches: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model check failed on iteration {} ({:?}, {} branches): {}",
            self.iteration, self.kind, self.branches, self.message
        )
    }
}

/// A passing exploration: how many executions ran and whether the
/// search was exhaustive within the preemption bound.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Total executions explored (DFS plus any random walks).
    pub iterations: u64,
    /// `true` when DFS enumerated every schedule within the preemption
    /// bound; `false` when a budget tripped and random walks backfilled.
    pub exhaustive: bool,
}

/// Exploration configuration. The defaults exhaust small models (2–3
/// threads, a few operations each) in well under a second.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// CHESS-style preemption budget per execution: the number of times
    /// the scheduler may switch away from a runnable thread at an
    /// operation point. Blocking waits and yields are always free.
    pub preemption_bound: usize,
    /// DFS execution budget before degrading to random walks.
    pub max_iterations: u64,
    /// Decision-path depth bound; a deeper execution is discarded as
    /// inconclusive (and triggers the random-walk fallback).
    pub max_branches: usize,
    /// Random executions to run when a budget trips.
    pub random_walks: u64,
    /// Seed for the random-walk fallback.
    pub seed: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_iterations: 100_000,
            max_branches: 5_000,
            random_walks: 2_000,
            seed: 0xC0FF_EE00_D15E_A5E5,
        }
    }
}

/// Serializes model checks process-wide (the explorer uses a process
/// panic hook and per-OS-thread context slots).
fn model_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Advances the DFS path to the next unexplored schedule; `false` when
/// the space (within bounds) is exhausted.
fn advance(path: &mut Vec<PathEntry>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.alts {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

struct RunOutcome {
    path: Vec<PathEntry>,
    overflow: bool,
    failure: Option<(FailureKind, String)>,
}

fn run_once<F>(f: &Arc<F>, path: Vec<PathEntry>, mode: Mode, seed: u64, b: &Builder) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Execution::new(path, mode, seed, b.preemption_bound, b.max_branches);
    let result = Arc::new(Mutex::new(None));
    let f2 = Arc::clone(f);
    let exec2 = Arc::clone(&exec);
    let res2 = Arc::clone(&result);
    let os = std::thread::Builder::new()
        .name("kron-model-0".into())
        .spawn(move || crate::thread::run_virtual_thread(exec2, 0, res2, move || f2()))
        .expect("spawning the model root thread failed");
    {
        let mut core = exec.lock();
        while !core.done {
            core = exec.cv.wait(core).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = os.join();
    let mut core = exec.lock();
    RunOutcome {
        path: std::mem::take(&mut core.path),
        overflow: core.overflow,
        failure: core.failure.take(),
    }
}

impl Builder {
    /// A builder with the default budgets.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Explores `f` and returns the first failing schedule, or a
    /// [`Report`] when every explored schedule passes. Does not panic on
    /// model failures — the mutation-validation suites use this to
    /// assert the checker *catches* seeded bugs.
    pub fn check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _guard = model_lock().lock().unwrap_or_else(|e| e.into_inner());
        // Failing iterations panic inside model threads by design;
        // silence the default hook for the duration so exploration
        // doesn't spray backtraces, and restore it after.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = self.check_inner(Arc::new(f));
        std::panic::set_hook(prev_hook);
        result
    }

    fn check_inner<F>(&self, f: Arc<F>) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut path: Vec<PathEntry> = Vec::new();
        let mut iterations: u64 = 0;
        let mut bounded = false;
        let mut exhausted = false;
        while iterations < self.max_iterations {
            let out = run_once(&f, path, Mode::Dfs, self.seed, self);
            iterations += 1;
            if let Some((kind, message)) = out.failure {
                return Err(Failure {
                    kind,
                    message,
                    iteration: iterations - 1,
                    branches: out.path.len(),
                });
            }
            bounded |= out.overflow;
            path = out.path;
            if !advance(&mut path) {
                exhausted = true;
                break;
            }
        }
        if exhausted && !bounded {
            return Ok(Report {
                iterations,
                exhaustive: true,
            });
        }
        // Budget tripped: top up with seeded random walks so rare deep
        // interleavings still get sampled.
        for walk in 0..self.random_walks {
            let seed = self
                .seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(walk);
            let out = run_once(&f, Vec::new(), Mode::Random, seed, self);
            iterations += 1;
            if let Some((kind, message)) = out.failure {
                return Err(Failure {
                    kind,
                    message,
                    iteration: iterations - 1,
                    branches: out.path.len(),
                });
            }
        }
        Ok(Report {
            iterations,
            exhaustive: false,
        })
    }
}

/// Explores `f` with the default [`Builder`]; panics with the failing
/// schedule's description if any explored interleaving fails. This is
/// the assertion form the model-check suites use.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(failure) = Builder::new().check(f) {
        panic!("{failure}");
    }
}
