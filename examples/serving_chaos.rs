//! Self-healing serving under a scripted chaos drill: transparent batch
//! retry with degraded re-sharding, per-device circuit breakers, the
//! slow-device watchdog, and the stats/health probes that make recovery
//! observable.
//!
//! The drill serves one model on the simulated 4-GPU machine while a
//! `FaultPlan` injects scripted device faults mid-trace:
//!
//! 1. a one-shot device panic — retried away on a rebuilt grid, invisible
//!    to the client (the receipt shows the attempt count);
//! 2. a repeated panic on one device — the retry ladder degrades the grid
//!    (4 → 2 GPUs) and the device's circuit breaker trips, quarantining
//!    it until a cooldown + clean probe close it again;
//! 3. a device stall past the watchdog budget — bounded into a
//!    `DeviceTimeout` and then retried like any other device fault.
//!
//! Every served result is checked against the shuffle oracle: recovery is
//! bit-exact, not approximate, because every backend and every degraded
//! grid runs the same microkernel.
//!
//! Run with `cargo run --release --example serving_chaos`.

use fastkron::prelude::*;

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 3 * r * cols + c) % 13) as f64 - 6.0
    })
}

fn health_line(runtime: &Runtime) -> String {
    runtime
        .device_health()
        .iter()
        .map(|d| {
            let state = match d.state {
                BreakerState::Closed => "closed",
                BreakerState::Open => "OPEN",
                BreakerState::HalfOpen => "half-open",
            };
            format!("gpu{}:{state}({} fails)", d.gpu, d.consecutive_failures)
        })
        .collect::<Vec<_>>()
        .join("  ")
}

fn main() {
    // Injected device faults are *caught* panics on the simulated device
    // threads; keep their default backtrace spew out of the drill's
    // narrative (anything panicking elsewhere still reports normally).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let on_sim_device = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("kron-sim-gpu"));
        if !on_sim_device {
            default_hook(info);
        }
    }));

    // Manual clock: every timing decision in the drill — retry backoff,
    // breaker cooldown, watchdog verdicts — is deterministic.
    let clock = Clock::manual();
    let handle = clock.manual_handle().expect("manual clock");
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 64,
        batch_max_m: 16,
        clock,
        backend: Backend::Distributed { gpus: 4, p2p: true },
        // Defaults shown explicitly: up to 3 re-executions, immediate
        // retry, degrade the grid after the first same-width rebuild.
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_us: 0,
            degrade: true,
        },
        // Trip a device after 2 consecutive faults; quarantine for 5 ms
        // of clock time before offering it again half-open.
        breaker: BreakerPolicy {
            trip_after: 2,
            cooldown_us: 5_000,
        },
        ..RuntimeConfig::default()
    });

    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let model = runtime.load_model(factors.clone()).expect("valid model");
    let x = seq_matrix(8, model.input_cols(), 3);
    let oracle = kron_core::shuffle::kron_matmul_shuffle(&x, &refs).expect("oracle");

    // ---- Act 1: a transient fault, retried away transparently. -------
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch(2, 0))
        .expect("valid plan");
    let t = runtime.submit(&model, x.clone()).expect("submit");
    let (y, receipt) = t.wait_with_receipt().expect("client never sees the fault");
    assert_matrices_close(&y, &oracle, "act 1");
    println!(
        "act 1: device 2 panicked mid-batch -> served Ok in {} attempts on grid {:?}",
        receipt.attempts, receipt.grid
    );

    // ---- Act 2: a persistent fault trips the breaker and degrades. ---
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch_repeat(1, 0, 2))
        .expect("valid plan");
    let t = runtime.submit(&model, x.clone()).expect("submit");
    let (y, receipt) = t.wait_with_receipt().expect("recovered degraded");
    assert_matrices_close(&y, &oracle, "act 2");
    println!(
        "act 2: device 1 failed twice -> breaker tripped, served Ok in {} attempts on grid {:?}",
        receipt.attempts, receipt.grid
    );
    println!("       health: {}", health_line(&runtime));

    // Quarantined serving: still Ok, first attempt, routed around gpu 1.
    let y = runtime.execute(&model, x.clone()).expect("degraded serve");
    assert_matrices_close(&y, &oracle, "quarantined serve");

    // Cooldown elapses on the manual clock; a clean full-width batch
    // closes the breaker.
    handle.advance_us(5_000);
    let t = runtime.submit(&model, x.clone()).expect("submit");
    let (y, receipt) = t.wait_with_receipt().expect("half-open probe");
    assert_matrices_close(&y, &oracle, "probe");
    println!(
        "       after cooldown: probe served on grid {:?}; health: {}",
        receipt.grid,
        health_line(&runtime)
    );

    // ---- Act 3: a hung device, bounded by the watchdog. --------------
    // The stall (60 s) dwarfs the watchdog budget (2 s of clock time by
    // default), so the coordinator converts the hang into DeviceTimeout
    // and the retry machinery takes it from there. The manual clock is
    // advanced from a helper thread so the watchdog sees time pass.
    runtime
        .install_fault_plan(FaultPlan::new().stall_on_batch(
            3,
            runtime.stats().sharded_batches,
            60_000_000,
        ))
        .expect("valid plan");
    let ticker = {
        let handle = std::sync::Arc::clone(&handle);
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&done);
        let join = std::thread::spawn(move || {
            while !flag.load(std::sync::atomic::Ordering::SeqCst) {
                handle.advance_us(100_000);
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
        (done, join)
    };
    let t = runtime.submit(&model, x.clone()).expect("submit");
    let (y, receipt) = t.wait_with_receipt().expect("timeout retried away");
    ticker.0.store(true, std::sync::atomic::Ordering::SeqCst);
    ticker.1.join().expect("ticker joins");
    assert_matrices_close(&y, &oracle, "act 3");
    println!(
        "act 3: device 3 hung -> watchdog verdict, retried -> Ok in {} attempts on grid {:?}",
        receipt.attempts, receipt.grid
    );

    let stats = runtime.stats();
    println!(
        "\nledger: retries={} degraded_batches={} recovered_requests={} breaker_trips={} evictions={}",
        stats.retries,
        stats.degraded_batches,
        stats.recovered_requests,
        stats.breaker_trips,
        stats.evictions
    );
    assert!(stats.retries >= 4);
    assert!(stats.recovered_requests >= 3);
    assert!(stats.breaker_trips >= 1);
    println!("every recovery bit-exact against the shuffle oracle");

    runtime.shutdown();
}
