//! Emulation of FastKron's `SlicedMultiplyKernel` (paper Figure 3) at
//! thread-block granularity, with warp-accurate memory-access tracing.
//!
//! The emulator executes the exact loop structure of the CUDA kernel:
//!
//! 1. `ShiftGToS`/`DirectGToS` — stage `TP` elements of every slice of `X`
//!    and `TP×TQ` of `F` from global to shared memory,
//! 2. `ShiftSToR`/`DirectSToR` — stage `RP` elements of `RK` slices and
//!    `RQ` columns into per-thread registers,
//! 3. register-tile multiply-accumulate,
//! 4. epilogue scattering `TM×RK×RQ` results per thread to the correct
//!    global columns (`q·K/P + slice`), which is what makes the transpose
//!    unnecessary.
//!
//! Every warp's shared/global accesses can be fed to a [`Tracer`]; since
//! all blocks of a launch execute the same access pattern modulo base
//! offsets, tracing block `(0,0,0)` and scaling by the grid size
//! reproduces the full-kernel transaction counts (the Table 2 quantities).

use crate::tile::{Caching, TileConfig};
use gpu_sim::trace::{Dir, Tracer};
use gpu_sim::KernelStats;
use kron_core::{Element, KronError, Matrix, Result};

/// Read side of global memory for a block run: real data or an
/// address-only surface (for tracing without allocating the operand).
#[derive(Clone, Copy)]
pub enum GlobalSrc<'a, T> {
    /// Real row-major buffer.
    Real(&'a [T]),
    /// Every read returns zero (addresses are still traced).
    Zeros,
}

impl<T: Element> GlobalSrc<'_, T> {
    #[inline(always)]
    pub(crate) fn read(&self, idx: usize) -> T {
        match self {
            GlobalSrc::Real(buf) => buf[idx],
            GlobalSrc::Zeros => T::ZERO,
        }
    }
}

/// Write side of global memory for a block run.
pub enum GlobalDst<'a, T> {
    /// Real row-major buffer.
    Real(&'a mut [T]),
    /// Writes are dropped (addresses are still traced).
    Discard,
}

impl<T: Element> GlobalDst<'_, T> {
    #[inline(always)]
    pub(crate) fn write(&mut self, idx: usize, v: T) {
        if let GlobalDst::Real(buf) = self {
            buf[idx] = v;
        }
    }
}

/// Shared-memory column for logical `(slice, elem)` under a caching scheme
/// (paper Figure 5). `shift = slice / RK`, applied modulo `TP`.
#[inline(always)]
pub fn shared_col(caching: Caching, slice: usize, elem: usize, tp: usize, rk: usize) -> usize {
    match caching {
        Caching::Shift => slice * tp + (elem + slice / rk) % tp,
        Caching::Direct => slice * tp + elem,
    }
}

/// One sliced-multiply launch: `Y[M × K/P·Q] = slicedmul(X[M × K], F[P × Q])`.
pub struct SlicedMultiplyKernel<'a, T> {
    /// Tile configuration (validated against the shape below).
    pub cfg: TileConfig,
    /// Rows of `X`.
    pub m: usize,
    /// Columns of `X`.
    pub k: usize,
    /// The factor, `P × Q`.
    pub f: &'a Matrix<T>,
}

impl<'a, T: Element> SlicedMultiplyKernel<'a, T> {
    /// Builds and validates a kernel for `X[m × k] · slices(F)`.
    ///
    /// # Errors
    /// Tile-validity errors from [`TileConfig::validate`].
    pub fn new(cfg: TileConfig, m: usize, k: usize, f: &'a Matrix<T>) -> Result<Self> {
        cfg.validate(m, k, f.rows(), f.cols())?;
        Ok(SlicedMultiplyKernel { cfg, m, k, f })
    }

    /// Output column count, `K/P · Q`.
    pub fn output_cols(&self) -> usize {
        self.k / self.f.rows() * self.f.cols()
    }

    /// Grid dimensions of the launch.
    pub fn grid(&self) -> (usize, usize, usize) {
        self.cfg.grid(self.m, self.k, self.f.cols())
    }

    /// Executes every thread block, producing the numeric result. Intended
    /// for correctness tests and small problems; large runs should use
    /// [`crate::algorithm::sliced_multiply`] for the values and
    /// [`Self::trace_block`] for the counters.
    pub fn run_all(&self, x: &Matrix<T>) -> Result<Matrix<T>> {
        if x.rows() != self.m || x.cols() != self.k {
            return Err(KronError::ShapeMismatch {
                expected: format!("X {}×{}", self.m, self.k),
                found: format!("X {}×{}", x.rows(), x.cols()),
            });
        }
        let mut y = Matrix::zeros(self.m, self.output_cols());
        let (gx, gy, gz) = self.grid();
        let src = GlobalSrc::Real(x.as_slice());
        for bx in 0..gx {
            for by in 0..gy {
                for bz in 0..gz {
                    let mut dst = GlobalDst::Real(y.as_mut_slice());
                    self.run_block(bx, by, bz, src, &mut dst, &mut None);
                }
            }
        }
        Ok(y)
    }

    /// Runs block `(0, 0, 0)` in address-only mode and returns its
    /// counters (scale by the grid size for launch totals).
    pub fn trace_block(&self, tracer: &mut Tracer) -> KernelStats {
        let before = tracer.stats;
        let src: GlobalSrc<'_, T> = GlobalSrc::Zeros;
        let mut dst: GlobalDst<'_, T> = GlobalDst::Discard;
        self.run_block(0, 0, 0, src, &mut dst, &mut Some(tracer));
        let mut delta = tracer.stats;
        delta.flops -= before.flops;
        delta.smem_load_transactions -= before.smem_load_transactions;
        delta.smem_store_transactions -= before.smem_store_transactions;
        delta.smem_load_ideal -= before.smem_load_ideal;
        delta.smem_store_ideal -= before.smem_store_ideal;
        delta.gmem_load_sectors -= before.gmem_load_sectors;
        delta.gmem_store_sectors -= before.gmem_store_sectors;
        delta.gmem_useful_bytes -= before.gmem_useful_bytes;
        delta.barriers -= before.barriers;
        delta
    }

    /// Executes one thread block `(bx, by, bz)`.
    ///
    /// Follows paper Figure 3 line-by-line; see module docs for the phase
    /// structure. When `tracer` is set, every warp's accesses are recorded.
    pub fn run_block(
        &self,
        bx: usize,
        by: usize,
        bz: usize,
        x: GlobalSrc<'_, T>,
        y: &mut GlobalDst<'_, T>,
        tracer: &mut Option<&mut Tracer>,
    ) {
        let TileConfig {
            tm,
            tk,
            tq,
            tp,
            rk,
            rq,
            rp,
            caching,
        } = self.cfg;
        let (p, q) = (self.f.rows(), self.f.cols());
        let elem_bytes = T::DTYPE.bytes();
        let slices = tk / p; // slices per block
        let ks = slices * tp; // Xs row length
        let bdim = (slices / rk) * (tq / rq);
        let warp = 32;
        let slice_groups = slices / rk;
        let out_cols = self.output_cols();
        let global_slices = self.k / p;

        let mut xs = vec![T::ZERO; tm * ks];
        let mut fs = vec![T::ZERO; tp * tq];
        // Per-thread accumulators Yr[tm][rk][rq].
        let mut yr = vec![T::ZERO; bdim * tm * rk * rq];
        // Per-thread staging registers for the current rp step.
        let mut xr = vec![T::ZERO; bdim * tm * rk * rp];
        let mut fr = vec![T::ZERO; bdim * rp * rq];

        // Scratch address buffers for warp-level tracing.
        let mut g_addrs: Vec<usize> = Vec::with_capacity(warp);
        let mut s_addrs: Vec<usize> = Vec::with_capacity(warp);

        // Main loop over TP-tiles of the factor's rows (Figure 3 line 7).
        for tp_base in (0..p).step_by(tp) {
            // -------- Step 1: global → shared (lines 9–10) --------
            // X part: thread `tid` handles Xs indices tid, tid+bdim, …
            for mi in 0..tm {
                let grow = bx * tm + mi;
                let row_in_range = grow < self.m;
                let mut base = 0;
                while base < ks {
                    let todo = (ks - base).min(bdim);
                    for w0 in (0..todo).step_by(warp) {
                        let lanes = (todo - w0).min(warp);
                        g_addrs.clear();
                        s_addrs.clear();
                        for l in 0..lanes {
                            let kidx = base + w0 + l;
                            let elem = kidx % tp;
                            let slice = kidx / tp;
                            let scol = shared_col(caching, slice, elem, tp, rk);
                            let gcol = by * tk + slice * p + tp_base + elem;
                            if row_in_range {
                                let gidx = grow * self.k + gcol;
                                xs[mi * ks + scol] = x.read(gidx);
                                if tracer.is_some() {
                                    g_addrs.push(gidx * elem_bytes);
                                    s_addrs.push((mi * ks + scol) * elem_bytes);
                                }
                            }
                        }
                        if let Some(t) = tracer.as_deref_mut() {
                            t.global_access(Dir::Load, &g_addrs, elem_bytes);
                            t.shared_access(Dir::Store, &s_addrs, elem_bytes);
                        }
                    }
                    base += bdim;
                }
            }
            // F part (DirectGToS): Fs[r][c] = F[tp_base + r][bz·TQ + c].
            let ftile = tp * tq;
            let mut base = 0;
            while base < ftile {
                let todo = (ftile - base).min(bdim);
                for w0 in (0..todo).step_by(warp) {
                    let lanes = (todo - w0).min(warp);
                    g_addrs.clear();
                    s_addrs.clear();
                    for l in 0..lanes {
                        let idx = base + w0 + l;
                        let (r, c) = (idx / tq, idx % tq);
                        // F is always real (it is tiny); read it directly.
                        fs[r * tq + c] = self.f[(tp_base + r, bz * tq + c)];
                        if tracer.is_some() {
                            g_addrs.push(((tp_base + r) * q + bz * tq + c) * elem_bytes);
                            s_addrs.push((r * tq + c) * elem_bytes);
                        }
                    }
                    if let Some(t) = tracer.as_deref_mut() {
                        t.global_access(Dir::Load, &g_addrs, elem_bytes);
                        t.shared_access(Dir::Store, &s_addrs, elem_bytes);
                    }
                }
                base += bdim;
            }
            if let Some(t) = tracer.as_deref_mut() {
                t.barrier();
            }

            // -------- Steps 2–3: shared → registers, FMA (lines 12–21) ----
            for rp_base in (0..tp).step_by(rp) {
                // ShiftSToR / DirectSToR, warp by warp.
                for w0 in (0..bdim).step_by(warp) {
                    let lanes = (bdim - w0).min(warp);
                    // X registers: one instruction per (m, i, pp).
                    for mi in 0..tm {
                        for i in 0..rk {
                            for pp in 0..rp {
                                s_addrs.clear();
                                for l in 0..lanes {
                                    let tid = w0 + l;
                                    let yk = (tid % slice_groups) * rk;
                                    let slice = yk + i;
                                    let elem = rp_base + pp;
                                    let scol = shared_col(caching, slice, elem, tp, rk);
                                    let v = xs[mi * ks + scol];
                                    xr[((tid * tm + mi) * rk + i) * rp + pp] = v;
                                    if tracer.is_some() {
                                        s_addrs.push((mi * ks + scol) * elem_bytes);
                                    }
                                }
                                if let Some(t) = tracer.as_deref_mut() {
                                    t.shared_access(Dir::Load, &s_addrs, elem_bytes);
                                }
                            }
                        }
                    }
                    // F registers: one instruction per (pp, qq).
                    for pp in 0..rp {
                        for qq in 0..rq {
                            s_addrs.clear();
                            for l in 0..lanes {
                                let tid = w0 + l;
                                let yq = (tid / slice_groups) * rq;
                                let sidx = (rp_base + pp) * tq + yq + qq;
                                fr[(tid * rp + pp) * rq + qq] = fs[sidx];
                                if tracer.is_some() {
                                    s_addrs.push(sidx * elem_bytes);
                                }
                            }
                            if let Some(t) = tracer.as_deref_mut() {
                                t.shared_access(Dir::Load, &s_addrs, elem_bytes);
                            }
                        }
                    }
                    // FMA on register tiles (lines 18–20).
                    for l in 0..lanes {
                        let tid = w0 + l;
                        for mi in 0..tm {
                            for i in 0..rk {
                                for qq in 0..rq {
                                    let yidx = ((tid * tm + mi) * rk + i) * rq + qq;
                                    let mut acc = yr[yidx];
                                    for pp in 0..rp {
                                        let xv = xr[((tid * tm + mi) * rk + i) * rp + pp];
                                        let fv = fr[(tid * rp + pp) * rq + qq];
                                        acc = xv.mul_add(fv, acc);
                                    }
                                    yr[yidx] = acc;
                                }
                            }
                        }
                    }
                    if let Some(t) = tracer.as_deref_mut() {
                        t.flops(2 * (lanes * tm * rk * rq * rp) as u64);
                    }
                }
            }
            if let Some(t) = tracer.as_deref_mut() {
                t.barrier();
            }
        }

        // -------- Step 4: registers → global (lines 23–29) --------
        // Consecutive output elements are consecutive slices against the
        // same factor column, so each thread's RK elements are contiguous
        // and a column c's group starts at c·K/P.
        for r in 0..tm {
            let grow = bx * tm + r;
            if grow >= self.m {
                continue;
            }
            // The CUDA kernel emits one vectorized store per (row, column)
            // pair (`st.global.v4` and friends) covering the thread's RK
            // consecutive elements; trace it as one access of RK·sizeof(T)
            // bytes per lane.
            for b in 0..rq {
                for w0 in (0..bdim).step_by(warp) {
                    let lanes = (bdim - w0).min(warp);
                    g_addrs.clear();
                    for l in 0..lanes {
                        let tid = w0 + l;
                        let yk = (tid % slice_groups) * rk;
                        let yq = (tid / slice_groups) * rq;
                        let gq = bz * tq + yq + b;
                        let gslice = by * slices + yk;
                        let ycol = crate::exec::fused_output_col(gq, global_slices, gslice);
                        let gidx = grow * out_cols + ycol;
                        for e in 0..rk {
                            y.write(gidx + e, yr[((tid * tm + r) * rk + e) * rq + b]);
                        }
                        if tracer.is_some() {
                            g_addrs.push(gidx * elem_bytes);
                        }
                    }
                    if let Some(t) = tracer.as_deref_mut() {
                        t.global_access(Dir::Store, &g_addrs, rk * elem_bytes);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::sliced_multiply;
    use gpu_sim::device::V100;
    use kron_core::assert_matrices_close;

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + 5 * r * cols + c) % 17) as f64 - 8.0
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn cfg(
        tm: usize,
        tk: usize,
        tq: usize,
        tp: usize,
        rk: usize,
        rq: usize,
        rp: usize,
        caching: Caching,
    ) -> TileConfig {
        TileConfig {
            tm,
            tk,
            tq,
            tp,
            rk,
            rq,
            rp,
            caching,
        }
    }

    #[test]
    fn figure4_config_matches_reference() {
        // The worked example of paper Figure 4: X 2×512, F 8×8,
        // TM=1 TK=512 TQ=2 TP=4 RK=2 RQ=2 RP=2.
        let x = seq_matrix(2, 512, 3);
        let f = seq_matrix(8, 8, 1);
        let kern =
            SlicedMultiplyKernel::new(cfg(1, 512, 2, 4, 2, 2, 2, Caching::Shift), 2, 512, &f)
                .unwrap();
        let y = kern.run_all(&x).unwrap();
        let oracle = sliced_multiply(&x, &f).unwrap();
        assert_matrices_close(&y, &oracle, "figure-4 kernel");
    }

    #[test]
    fn direct_caching_same_result() {
        let x = seq_matrix(2, 512, 4);
        let f = seq_matrix(8, 8, 2);
        let kern =
            SlicedMultiplyKernel::new(cfg(1, 512, 2, 4, 2, 2, 2, Caching::Direct), 2, 512, &f)
                .unwrap();
        assert_matrices_close(
            &kern.run_all(&x).unwrap(),
            &sliced_multiply(&x, &f).unwrap(),
            "direct caching",
        );
    }

    #[test]
    fn many_configs_match_reference() {
        // Sweep tile shapes over a 4×256 problem with F 4×4.
        let x = seq_matrix(4, 256, 7);
        let f = seq_matrix(4, 4, 5);
        let mut tried = 0;
        for &tm in &[1usize, 2, 4] {
            for &tk in &[4usize, 16, 64, 256] {
                for &tq in &[1usize, 2, 4] {
                    for &tp in &[1usize, 2, 4] {
                        for &rk in &[1usize, 2] {
                            for &rq in &[1usize, 2] {
                                for &rp in &[1usize, 2] {
                                    for &c in &[Caching::Shift, Caching::Direct] {
                                        let cfg = cfg(tm, tk, tq, tp, rk, rq, rp, c);
                                        if cfg.validate(4, 256, 4, 4).is_err() {
                                            continue;
                                        }
                                        tried += 1;
                                        let kern =
                                            SlicedMultiplyKernel::new(cfg, 4, 256, &f).unwrap();
                                        let y = kern.run_all(&x).unwrap();
                                        let oracle = sliced_multiply(&x, &f).unwrap();
                                        assert_matrices_close(&y, &oracle, &format!("cfg {cfg:?}"));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(tried > 50, "only {tried} configs were exercised");
    }

    #[test]
    fn partial_last_row_block() {
        // M=3 with TM=2: the second row-block is half-empty.
        let x = seq_matrix(3, 64, 2);
        let f = seq_matrix(4, 4, 3);
        let kern = SlicedMultiplyKernel::new(cfg(2, 64, 2, 2, 2, 2, 2, Caching::Shift), 3, 64, &f)
            .unwrap();
        assert_matrices_close(
            &kern.run_all(&x).unwrap(),
            &sliced_multiply(&x, &f).unwrap(),
            "partial TM",
        );
    }

    #[test]
    fn rectangular_factor() {
        // P=6, Q=3 non-square, non-power-of-two.
        let x = seq_matrix(2, 36, 9);
        let f = seq_matrix(6, 3, 4);
        let kern = SlicedMultiplyKernel::new(cfg(1, 36, 3, 3, 2, 3, 3, Caching::Shift), 2, 36, &f)
            .unwrap();
        assert_matrices_close(
            &kern.run_all(&x).unwrap(),
            &sliced_multiply(&x, &f).unwrap(),
            "rectangular factor",
        );
    }

    #[test]
    fn f32_path() {
        let x = Matrix::<f32>::from_fn(2, 64, |r, c| ((r * 64 + c) % 7) as f32 - 3.0);
        let f = Matrix::<f32>::from_fn(8, 8, |r, c| ((r * 8 + c) % 5) as f32 - 2.0);
        let kern = SlicedMultiplyKernel::new(cfg(1, 64, 4, 4, 2, 2, 2, Caching::Shift), 2, 64, &f)
            .unwrap();
        assert_matrices_close(
            &kern.run_all(&x).unwrap(),
            &sliced_multiply(&x, &f).unwrap(),
            "f32 kernel",
        );
    }

    #[test]
    fn shift_reduces_bank_conflicts_vs_direct() {
        // The §4.1 claim, measured: with RK·TP a multiple of the bank
        // count (here 4·8 = 32 words), the direct layout sends every lane
        // of a warp to the same bank; shift caching bounds conflicts by
        // ⌈warp/TP⌉ = 4. F 8×8, TK=2048 → 256 slices.
        let f = Matrix::<f32>::from_fn(8, 8, |_, _| 1.0);
        let mk = |caching| {
            let kern = SlicedMultiplyKernel::new(cfg(1, 2048, 8, 8, 4, 2, 2, caching), 1, 2048, &f)
                .unwrap();
            let mut tracer = Tracer::new(&V100);
            let stats = kern.trace_block(&mut tracer);
            (stats.smem_load_transactions, stats.smem_load_ideal)
        };
        let (shift_tr, ideal) = mk(Caching::Shift);
        let (direct_tr, _) = mk(Caching::Direct);
        assert!(
            direct_tr >= 3 * shift_tr,
            "direct {direct_tr} vs shift {shift_tr} (ideal {ideal})"
        );
        // Shift caching should stay within ⌈32/TP⌉ = 4× of ideal.
        assert!(shift_tr <= 5 * ideal, "shift {shift_tr} vs ideal {ideal}");
    }

    #[test]
    fn trace_counts_flops_exactly() {
        let f = seq_matrix(4, 4, 0);
        let kern = SlicedMultiplyKernel::new(cfg(2, 64, 4, 4, 2, 2, 2, Caching::Shift), 2, 64, &f)
            .unwrap();
        let mut tracer = Tracer::new(&V100);
        let stats = kern.trace_block(&mut tracer);
        // One block covers the whole problem: 2·TM·TK·TQ FMAs… as FLOPs:
        // 2 rows × (64/4 slices × 4 cols) outputs × 4 MACs × 2 = 1024.
        assert_eq!(stats.flops, 2 * 2 * 64 * 4);
        // Both barriers fire once per TP tile (TP = P → one tile).
        assert_eq!(stats.barriers, 2);
    }

    #[test]
    fn trace_is_deterministic() {
        let f = seq_matrix(8, 8, 1);
        let kern =
            SlicedMultiplyKernel::new(cfg(1, 512, 2, 4, 2, 2, 2, Caching::Shift), 2, 512, &f)
                .unwrap();
        let mut t1 = Tracer::new(&V100);
        let mut t2 = Tracer::new(&V100);
        assert_eq!(kern.trace_block(&mut t1), kern.trace_block(&mut t2));
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let f = seq_matrix(4, 4, 0);
        let kern = SlicedMultiplyKernel::new(cfg(1, 64, 4, 4, 1, 1, 1, Caching::Shift), 2, 64, &f)
            .unwrap();
        let bad = seq_matrix(2, 128, 0);
        assert!(kern.run_all(&bad).is_err());
    }
}
