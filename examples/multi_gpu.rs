//! Distributed Kron-Matmul on a simulated 8-GPU fabric: functional
//! execution over real threads + channels, verification against the
//! single-device engine, and the communication-volume comparison against
//! the CTF/DISTAL models.
//!
//! Run with `cargo run --release --example multi_gpu`.

use fastkron::dist::{CtfEngine, DistFastKron, DistalEngine};
use fastkron::prelude::*;
use kron_core::Matrix;

fn main() {
    let gpus = 8;
    let problem = KronProblem::uniform(16, 8, 4).expect("valid shape");
    let k = problem.input_cols();

    let x = Matrix::<f64>::from_fn(16, k, |r, c| ((r * 13 + c) % 17) as f64 - 8.0);
    let factors: Vec<Matrix<f64>> = (0..4)
        .map(|i| Matrix::from_fn(8, 8, |r, c| ((i * 7 + r * 8 + c) % 9) as f64 - 4.0))
        .collect();
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();

    let engine = DistFastKron::new(&V100, gpus).expect("grid");
    let grid = engine.grid();
    println!(
        "Distributing M=16, 8^4 over {gpus} GPUs as a {}×{} grid",
        grid.gm, grid.gk
    );

    // Functional distributed run (threads + channels) vs single-device.
    let y_dist = engine.execute(&x, &refs).expect("distributed run");
    let y_single = fastkron::kron::algorithm::kron_matmul_fastkron(&x, &refs).expect("single run");
    assert_matrices_close(&y_dist, &y_single, "distributed == single");
    println!("Distributed result matches the single-device engine.");

    // Communication accounting.
    let vol = engine.comm_volume_elements(&problem).expect("volume");
    println!("FastKron communication: {vol} elements (Algorithm 2, grouped rounds)");

    let fk = engine.simulate::<f64>(&problem).expect("sim");
    let ctf = CtfEngine::new(&V100, gpus)
        .unwrap()
        .simulate::<f64>(&problem)
        .unwrap();
    let distal = DistalEngine::new(&V100, gpus)
        .unwrap()
        .simulate::<f64>(&problem)
        .unwrap();
    println!(
        "Simulated wall time: FastKron {:.3} ms | DISTAL {:.3} ms | CTF {:.3} ms",
        fk.seconds * 1e3,
        distal.seconds * 1e3,
        ctf.seconds * 1e3
    );
    println!(
        "Comm bytes: FastKron {} | DISTAL {} | CTF {}",
        fk.comm_bytes, distal.comm_bytes, ctf.comm_bytes
    );
}
