//! Vendored API-subset shim of [crossbeam](https://crates.io/crates/crossbeam).
//!
//! Provides `crossbeam::channel::{unbounded, bounded, Sender, Receiver}`
//! with clonable ends, plus `queue::ArrayQueue` — the surfaces used by the
//! simulated multi-GPU fabric (as its NCCL stand-in) and the serving
//! runtime's sharded admission lanes.
//!
//! Two channel flavors, mirroring crossbeam's internal design:
//!
//! - **list** ([`channel::unbounded`]): `Mutex<VecDeque>` + `Condvar`.
//!   Throughput is irrelevant at the fabric's message counts (a few per
//!   GPU pair per run), so the simple lock is fine.
//! - **ring** ([`channel::bounded`]): a lock-free bounded MPMC ring
//!   ([`queue::ArrayQueue`], Vyukov's algorithm) with condvar-assisted
//!   parking for blocking receives. Producers never take a lock on the
//!   fast path (they only touch the condvar mutex when a receiver has
//!   registered itself as sleeping), so N submitter threads scale without
//!   serializing on admission. The ring is preallocated at construction —
//!   sends never allocate, preserving zero-alloc steady-state serving.

#![deny(missing_docs)]

/// Synchronization facade: real `std` primitives normally, and the
/// `kron-modelcheck` deterministic replacements when the workspace is
/// built with `RUSTFLAGS="--cfg kron_loom"`.
///
/// Every sync-sensitive path in this crate (the Vyukov ring, the sleeper
/// handshake) goes through this module, so the model-check suites in
/// `tests/modelcheck.rs` drive the *exact* production protocol — same
/// code, swapped primitives. Release builds resolve every re-export to
/// the `std` type; the facade compiles away completely.
pub mod sync {
    /// Atomic types and fences (`std::sync::atomic` surface).
    pub mod atomic {
        #[cfg(kron_loom)]
        pub use kron_modelcheck::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
        #[cfg(not(kron_loom))]
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
    /// Interior mutability (`std::cell::UnsafeCell` surface).
    pub mod cell {
        #[cfg(kron_loom)]
        pub use kron_modelcheck::cell::UnsafeCell;
        #[cfg(not(kron_loom))]
        pub use std::cell::UnsafeCell;
    }
    /// Busy-wait hint; a schedulable yield under the model.
    pub mod hint {
        #[cfg(kron_loom)]
        pub use kron_modelcheck::hint::spin_loop;
        #[cfg(not(kron_loom))]
        pub use std::hint::spin_loop;
    }
    /// Cooperative yield; deprioritizes the thread under the model.
    pub mod thread {
        #[cfg(kron_loom)]
        pub use kron_modelcheck::thread::yield_now;
        #[cfg(not(kron_loom))]
        pub use std::thread::yield_now;
    }
    #[cfg(kron_loom)]
    pub use kron_modelcheck::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    #[cfg(not(kron_loom))]
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
}

/// Lock-free concurrent queues, mirroring `crossbeam::queue`.
pub mod queue {
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::cell::UnsafeCell;
    use std::mem::MaybeUninit;

    /// One slot of the ring. `seq` encodes the slot's lap state: writers
    /// may claim the slot when `seq == pos`, readers when `seq == pos + 1`.
    struct Slot<T> {
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue (Dmitry
    /// Vyukov's bounded MPMC ring). Capacity is rounded up to a power of
    /// two; all storage is allocated once at construction, so `push`/`pop`
    /// never allocate.
    pub struct ArrayQueue<T> {
        slots: Box<[Slot<T>]>,
        mask: usize,
        head: AtomicUsize,
        tail: AtomicUsize,
    }

    // SAFETY: the queue owns its values; sending the whole queue moves
    // them to one thread, which is safe whenever `T: Send`.
    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    // SAFETY: a slot's value cell is only touched by the thread that
    // CAS-claimed the matching head/tail position for the current lap,
    // and the claim/publish protocol on `seq` (Acquire load before the
    // access, Release store after) makes each value write happen-before
    // the read that consumes it. `T: Send` suffices — values cross
    // threads, they are never aliased.
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at least `capacity` elements (rounded
        /// up to the next power of two, minimum 2).
        pub fn new(capacity: usize) -> Self {
            let cap = capacity.max(2).next_power_of_two();
            let slots = (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            ArrayQueue {
                slots,
                mask: cap - 1,
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
            }
        }

        /// Number of slots (always a power of two).
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        /// Attempts to enqueue; returns the value back if the ring is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            // relaxed: speculative cursor read — the claiming CAS below
            // re-validates against the slot's Acquire-loaded seq.
            let mut pos = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[pos & self.mask];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq as isize - pos as isize;
                if diff == 0 {
                    // Slot is free for this lap; try to claim it.
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the tail CAS made this thread the
                            // unique claimant of slot `pos` for this lap;
                            // readers wait for the Release store of
                            // `pos + 1` below before touching the cell.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => pos = actual,
                    }
                } else if diff < 0 {
                    // The slot still holds a value from `mask + 1` laps
                    // ago: the ring is full.
                    return Err(value);
                } else {
                    // relaxed: stale-cursor refresh; validated on the
                    // next pass of the claim loop.
                    pos = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to dequeue; returns `None` if the ring is empty.
        pub fn pop(&self) -> Option<T> {
            // relaxed: speculative cursor read — the claiming CAS below
            // re-validates against the slot's Acquire-loaded seq.
            let mut pos = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[pos & self.mask];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq as isize - pos.wrapping_add(1) as isize;
                if diff == 0 {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the head CAS made this thread the
                            // unique consumer of slot `pos`; the Acquire
                            // load of `seq == pos + 1` above synchronized
                            // with the writer's Release store, so the
                            // value is fully initialized and unaliased.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            // Mark the slot writable for the next lap.
                            slot.seq
                                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                } else if diff < 0 {
                    return None;
                } else {
                    // relaxed: stale-cursor refresh; validated on the
                    // next pass of the claim loop.
                    pos = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Approximate number of queued elements (racy snapshot).
        pub fn len(&self) -> usize {
            // relaxed: documented racy snapshot; no decision hangs on it.
            let tail = self.tail.load(Ordering::Relaxed);
            let head = self.head.load(Ordering::Relaxed);
            tail.wrapping_sub(head) as isize as usize
        }

        /// Whether the queue currently looks empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }
}

/// Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use crate::sync::atomic::{fence, AtomicUsize, Ordering};
    use crate::sync::{Arc, Condvar, Mutex};
    use std::collections::VecDeque;
    use std::fmt;
    // Wall-clock deadlines are inherently non-deterministic, so
    // `recv_timeout` is not model-exercised (model suites use `recv` /
    // `try_recv`); under `kron_loom` the timed waits still compile
    // because the model condvar ignores the duration.
    use std::time::{Duration, Instant};

    use crate::queue::ArrayQueue;

    // ---------------------------------------------------------------- list

    struct ListShared<T> {
        queue: Mutex<Queue<T>>,
        ready: Condvar,
    }

    struct Queue<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    // ---------------------------------------------------------------- ring

    struct RingShared<T> {
        ring: ArrayQueue<T>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Number of receivers parked (or about to park) on `ready`.
        /// Producers only touch the condvar mutex when this is non-zero.
        sleepers: AtomicUsize,
        lock: Mutex<()>,
        ready: Condvar,
    }

    impl<T> RingShared<T> {
        /// Wakes parked receivers if any are registered. Pairs a SeqCst
        /// fence after the producer's push with one after the consumer's
        /// sleeper registration so a wakeup can never be missed.
        fn notify(&self) {
            fence(Ordering::SeqCst);
            // relaxed: ordered by the SeqCst fence above, paired with
            // the receiver's post-registration fence (model-checked).
            if self.sleepers.load(Ordering::Relaxed) > 0 {
                let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
                self.ready.notify_all();
            }
        }
    }

    enum Flavor<T> {
        List(Arc<ListShared<T>>),
        Ring(Arc<RingShared<T>>),
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        flavor: Flavor<T>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        flavor: Flavor<T>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    /// Creates an unbounded channel; both ends are clonable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(ListShared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                flavor: Flavor::List(Arc::clone(&shared)),
            },
            Receiver {
                flavor: Flavor::List(shared),
            },
        )
    }

    /// Creates a bounded lock-free MPMC channel holding at least `capacity`
    /// messages (rounded up to a power of two). Both ends are clonable —
    /// cloned receivers make the channel work-stealable. `send` spins (with
    /// yields) while the ring is full, providing backpressure without a
    /// lock; `recv` parks on a condvar only after the ring is observed
    /// empty.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(RingShared {
            ring: ArrayQueue::new(capacity),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            ready: Condvar::new(),
        });
        (
            Sender {
                flavor: Flavor::Ring(Arc::clone(&shared)),
            },
            Receiver {
                flavor: Flavor::Ring(shared),
            },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message. The list flavor never blocks; the ring
        /// flavor spin-yields while full (backpressure) and fails only
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.flavor {
                Flavor::List(shared) => {
                    // Receivers alive ⇔ some Arc is held by a Receiver.
                    // The shim (like a fabric with pre-created mailboxes)
                    // always accepts; a dropped receiver discards the queue.
                    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    q.items.push_back(value);
                    drop(q);
                    shared.ready.notify_one();
                    Ok(())
                }
                Flavor::Ring(shared) => {
                    let mut value = value;
                    let mut spins = 0u32;
                    loop {
                        if shared.receivers.load(Ordering::Acquire) == 0 {
                            return Err(SendError(value));
                        }
                        match shared.ring.push(value) {
                            Ok(()) => {
                                shared.notify();
                                return Ok(());
                            }
                            Err(v) => value = v,
                        }
                        // Full ring: a consumer exists (checked above) and
                        // is draining, so back off briefly and retry.
                        spins += 1;
                        if spins < 64 {
                            crate::sync::hint::spin_loop();
                        } else {
                            crate::sync::thread::yield_now();
                        }
                    }
                }
            }
        }

        /// Approximate number of queued messages (racy snapshot).
        pub fn len(&self) -> usize {
            match &self.flavor {
                Flavor::List(shared) => shared
                    .queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .items
                    .len(),
                Flavor::Ring(shared) => shared.ring.len(),
            }
        }

        /// Whether the channel currently looks empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.flavor {
                Flavor::List(shared) => {
                    shared
                        .queue
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .senders += 1;
                    Sender {
                        flavor: Flavor::List(Arc::clone(shared)),
                    }
                }
                Flavor::Ring(shared) => {
                    shared.senders.fetch_add(1, Ordering::Relaxed);
                    Sender {
                        flavor: Flavor::Ring(Arc::clone(shared)),
                    }
                }
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            match &self.flavor {
                Flavor::List(shared) => {
                    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    q.senders -= 1;
                    if q.senders == 0 {
                        drop(q);
                        shared.ready.notify_all();
                    }
                }
                Flavor::Ring(shared) => {
                    if shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last sender: wake parked receivers so they can
                        // observe the disconnect.
                        let _guard = shared.lock.lock().unwrap_or_else(|e| e.into_inner());
                        shared.ready.notify_all();
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.flavor {
                Flavor::List(shared) => {
                    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if let Some(v) = q.items.pop_front() {
                            return Ok(v);
                        }
                        if q.senders == 0 {
                            return Err(RecvError);
                        }
                        q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                }
                Flavor::Ring(shared) => loop {
                    if let Some(v) = shared.ring.pop() {
                        return Ok(v);
                    }
                    if shared.senders.load(Ordering::Acquire) == 0 {
                        // Catch a send racing the disconnect check.
                        return shared.ring.pop().ok_or(RecvError);
                    }
                    let mut guard = shared.lock.lock().unwrap_or_else(|e| e.into_inner());
                    shared.sleepers.fetch_add(1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    // Re-check after registering: a producer that missed
                    // our registration must have pushed before it.
                    if !shared.ring.is_empty() || shared.senders.load(Ordering::Acquire) == 0 {
                        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                        drop(guard);
                        // The racing producer may have claimed its slot
                        // but not yet published the value; give it the
                        // CPU rather than re-polling a torn ring.
                        crate::sync::thread::yield_now();
                        continue;
                    }
                    guard = shared.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
                    drop(guard);
                    shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                },
            }
        }

        /// Blocks up to `timeout` for a message — a timed [`Self::recv`]
        /// (parks on the condvar; no spinning).
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            match &self.flavor {
                Flavor::List(shared) => {
                    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if let Some(v) = q.items.pop_front() {
                            return Ok(v);
                        }
                        if q.senders == 0 {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        let (guard, _) = shared
                            .ready
                            .wait_timeout(q, deadline - now)
                            .unwrap_or_else(|e| e.into_inner());
                        q = guard;
                    }
                }
                Flavor::Ring(shared) => loop {
                    if let Some(v) = shared.ring.pop() {
                        return Ok(v);
                    }
                    if shared.senders.load(Ordering::Acquire) == 0 {
                        return shared.ring.pop().ok_or(RecvTimeoutError::Disconnected);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    let guard = shared.lock.lock().unwrap_or_else(|e| e.into_inner());
                    shared.sleepers.fetch_add(1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    if !shared.ring.is_empty() || shared.senders.load(Ordering::Acquire) == 0 {
                        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                        drop(guard);
                        // As in `recv`: let the racing producer publish.
                        crate::sync::thread::yield_now();
                        continue;
                    }
                    let (guard, _) = shared
                        .ready
                        .wait_timeout(guard, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    drop(guard);
                    shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                },
            }
        }

        /// Dequeues a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match &self.flavor {
                Flavor::List(shared) => {
                    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    match q.items.pop_front() {
                        Some(v) => Ok(v),
                        None if q.senders == 0 => Err(TryRecvError::Disconnected),
                        None => Err(TryRecvError::Empty),
                    }
                }
                Flavor::Ring(shared) => match shared.ring.pop() {
                    Some(v) => Ok(v),
                    None if shared.senders.load(Ordering::Acquire) == 0 => {
                        shared.ring.pop().ok_or(TryRecvError::Disconnected)
                    }
                    None => Err(TryRecvError::Empty),
                },
            }
        }

        /// Approximate number of queued messages (racy snapshot).
        pub fn len(&self) -> usize {
            match &self.flavor {
                Flavor::List(shared) => shared
                    .queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .items
                    .len(),
                Flavor::Ring(shared) => shared.ring.len(),
            }
        }

        /// Whether the channel currently looks empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            match &self.flavor {
                Flavor::List(shared) => Receiver {
                    flavor: Flavor::List(Arc::clone(shared)),
                },
                Flavor::Ring(shared) => {
                    shared.receivers.fetch_add(1, Ordering::Relaxed);
                    Receiver {
                        flavor: Flavor::Ring(Arc::clone(shared)),
                    }
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let Flavor::Ring(shared) = &self.flavor {
                shared.receivers.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use super::queue::ArrayQueue;

    #[test]
    fn send_recv_fifo() {
        let (s, r) = unbounded();
        s.send(1).unwrap();
        s.send(2).unwrap();
        assert_eq!(r.recv().unwrap(), 1);
        assert_eq!(r.try_recv().unwrap(), 2);
        assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_after_last_sender_drops() {
        let (s, r) = unbounded::<u8>();
        let s2 = s.clone();
        drop(s);
        s2.send(9).unwrap();
        drop(s2);
        assert_eq!(r.recv().unwrap(), 9);
        assert!(r.recv().is_err());
        assert_eq!(r.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (s, r) = unbounded::<u8>();
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        s.send(7).unwrap();
        assert_eq!(r.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(s);
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_handoff() {
        let (s, r) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                s.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += r.recv().unwrap();
        }
        t.join().unwrap();
        assert_eq!(sum, (0..100).sum::<i32>());
    }

    #[test]
    fn array_queue_fifo_and_full() {
        let q = ArrayQueue::new(4);
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        // Laps wrap correctly.
        for lap in 0..3 {
            q.push(lap).unwrap();
            assert_eq!(q.pop(), Some(lap));
        }
    }

    #[test]
    fn bounded_fifo_timeout_and_disconnect() {
        use std::time::Duration;
        let (s, r) = bounded::<u32>(8);
        s.send(1).unwrap();
        s.send(2).unwrap();
        assert_eq!(r.recv().unwrap(), 1);
        assert_eq!(r.try_recv().unwrap(), 2);
        assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        s.send(3).unwrap();
        assert_eq!(r.recv_timeout(Duration::from_millis(5)), Ok(3));
        drop(s);
        assert!(r.recv().is_err());
        assert_eq!(r.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_multi_producer_multi_consumer_counts() {
        use std::sync::atomic::{AtomicU64, Ordering};
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER: u64 = 2000;
        let (s, r) = bounded::<u64>(64);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..PER {
                        s.send(p as u64 * PER + i).unwrap();
                    }
                });
            }
            drop(s);
            for _ in 0..CONSUMERS {
                let r = r.clone();
                let (sum, count) = (&sum, &count);
                scope.spawn(move || {
                    while let Ok(v) = r.recv() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let total = PRODUCERS as u64 * PER;
        assert_eq!(count.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), (0..total).sum::<u64>());
    }

    #[test]
    fn bounded_backpressure_send_blocks_until_drained() {
        let (s, r) = bounded::<u32>(2);
        s.send(0).unwrap();
        s.send(1).unwrap();
        let t = std::thread::spawn(move || {
            s.send(2).unwrap(); // Spins until the consumer pops.
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(r.recv().unwrap(), 0);
        assert_eq!(r.recv().unwrap(), 1);
        assert_eq!(r.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn bounded_send_fails_when_all_receivers_dropped() {
        let (s, r) = bounded::<u32>(2);
        s.send(0).unwrap();
        s.send(1).unwrap();
        drop(r);
        // Ring is full and no consumer will ever drain it: send must fail
        // rather than spin forever.
        assert!(s.send(2).is_err());
    }
}
