//! Chaos-plane drills against the public runtime API: scripted device
//! faults, watchdog-bounded stalls, scheduler panics, and pre-warm
//! faults — each exercising one leg of the self-healing machinery
//! (transparent retry, degraded re-sharding, poisoned-runtime
//! containment, fault-time cache eviction).

use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::{assert_matrices_close, KronError, Matrix};
use kron_runtime::{Backend, Clock, FaultPlan, RetryPolicy, Runtime, RuntimeConfig};

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 5 * r * cols + 2 * c) % 17) as f64 - 8.0
    })
}

fn dist_config(gpus: usize) -> RuntimeConfig {
    RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        backend: Backend::Distributed { gpus, p2p: false },
        ..RuntimeConfig::default()
    }
}

fn model_factors(shapes: &[(usize, usize)], seed: usize) -> Vec<Matrix<f64>> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| seq_matrix(p, q, seed + 3 * i + 1))
        .collect()
}

fn oracle(x: &Matrix<f64>, factors: &[Matrix<f64>]) -> Matrix<f64> {
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    kron_matmul_shuffle(x, &refs).unwrap()
}

/// A repeated fault (below the breaker threshold) walks the degrade
/// ladder: two full-width attempts fail, the third halves the grid and
/// serves — attempts and the degraded grid are on the receipt, the
/// batch counts as degraded, and the result stays bit-exact.
#[test]
fn repeated_fault_degrades_grid_and_reports_receipt() {
    let runtime = Runtime::new(dist_config(4));
    let factors = model_factors(&[(4, 4), (4, 4)], 2);
    let model = runtime.load_model(factors.clone()).unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch_repeat(0, 0, 2))
        .unwrap();

    let x = seq_matrix(4, model.input_cols(), 11);
    let expected = oracle(&x, &factors);
    let t = runtime.submit(&model, x).unwrap();
    let (y, receipt) = t.wait_with_receipt().unwrap();
    assert_matrices_close(&y, &expected, "degraded serve");
    assert_eq!(receipt.attempts, 3, "two full-width failures then success");
    assert_eq!(
        receipt.grid,
        Some((1, 2)),
        "third attempt halved 4 → 2 GPUs"
    );

    let stats = runtime.stats();
    assert!(stats.retries >= 2, "stats: {stats:?}");
    assert_eq!(stats.degraded_batches, 1, "stats: {stats:?}");
    assert_eq!(stats.recovered_requests, 1, "stats: {stats:?}");
    assert_eq!(stats.breaker_trips, 0, "below the trip threshold");
    assert_eq!(runtime.pending_fault_events(), 0);
}

/// A stall within the watchdog budget is a latency blip: the device is
/// released on schedule and the batch succeeds on its first attempt.
#[test]
fn stall_within_watchdog_budget_is_a_latency_blip() {
    let runtime = Runtime::new(RuntimeConfig {
        device_watchdog_us: 200_000,
        ..dist_config(4)
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 4);
    let model = runtime.load_model(factors.clone()).unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().stall_on_batch(1, 0, 500))
        .unwrap();

    let x = seq_matrix(4, model.input_cols(), 3);
    let expected = oracle(&x, &factors);
    let t = runtime.submit(&model, x).unwrap();
    let (y, receipt) = t.wait_with_receipt().unwrap();
    assert_matrices_close(&y, &expected, "stalled-but-tolerable serve");
    assert_eq!(receipt.attempts, 1);
    assert_eq!(runtime.stats().retries, 0);
}

/// A stall past the watchdog budget becomes the bounded `DeviceTimeout`:
/// with retry disabled the client sees it raw, correctly attributed.
#[test]
fn stall_past_watchdog_surfaces_device_timeout_when_retry_disabled() {
    let runtime = Runtime::new(RuntimeConfig {
        device_watchdog_us: 3_000,
        retry: RetryPolicy {
            max_attempts: 0,
            backoff_us: 0,
            degrade: false,
        },
        ..dist_config(4)
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 6);
    let model = runtime.load_model(factors).unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().stall_on_batch(1, 0, 60_000_000))
        .unwrap();

    let x = seq_matrix(4, model.input_cols(), 5);
    match runtime.execute(&model, x) {
        Err(KronError::DeviceTimeout { gpu, waited_us }) => {
            assert_eq!(gpu, 1);
            assert!(waited_us >= 3_000, "waited {waited_us}us");
        }
        other => panic!("expected DeviceTimeout, got {other:?}"),
    }
    // The hung device was attributed like any other device fault.
    assert_eq!(runtime.device_health()[1].consecutive_failures, 1);
}

/// The same hung device under the default policy is retried away: the
/// timed-out engine is evicted, the rebuilt one serves, and the client
/// sees Ok with the retry on the receipt.
#[test]
fn stall_past_watchdog_recovers_transparently_with_retry() {
    let runtime = Runtime::new(RuntimeConfig {
        device_watchdog_us: 3_000,
        ..dist_config(4)
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 8);
    let model = runtime.load_model(factors.clone()).unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().stall_on_batch(2, 0, 60_000_000))
        .unwrap();

    let x = seq_matrix(4, model.input_cols(), 7);
    let expected = oracle(&x, &factors);
    let t = runtime.submit(&model, x).unwrap();
    let (y, receipt) = t.wait_with_receipt().unwrap();
    assert_matrices_close(&y, &expected, "recovered from hung device");
    assert!(receipt.attempts > 1, "receipt: {receipt:?}");
    let stats = runtime.stats();
    assert!(stats.retries >= 1, "stats: {stats:?}");
    assert!(stats.recovered_requests >= 1, "stats: {stats:?}");
    assert!(stats.evictions >= 1, "timed-out engine must be evicted");
}

/// A scheduler panic must not strand `Ticket::wait` callers: pending
/// tickets fail with `Shutdown`, later submits error instead of queueing
/// into a dead thread, and teardown still joins cleanly.
#[test]
fn scheduler_panic_poisons_runtime_without_stranding_waiters() {
    let clock = Clock::manual();
    let runtime = Runtime::new(RuntimeConfig {
        clock,
        ..dist_config(4)
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 10);
    let model = runtime.load_model(factors).unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().scheduler_panic_at_time(0))
        .unwrap();

    // Whichever requests are accepted before the panic lands must all
    // resolve with Shutdown — no caller may hang on the dead thread.
    let mut tickets = Vec::new();
    let mut rejected = 0;
    for i in 0..4 {
        match runtime.submit(&model, seq_matrix(2, model.input_cols(), i)) {
            Ok(t) => tickets.push(t),
            Err(KronError::Shutdown) => rejected += 1,
            Err(other) => panic!("unexpected submit error {other:?}"),
        }
    }
    assert!(!tickets.is_empty(), "at least the first submit is accepted");
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Err(KronError::Shutdown) => {}
            other => panic!("ticket {i}: expected Shutdown, got {other:?}"),
        }
    }
    let _ = rejected;

    // The runtime is poisoned: every later submit errors immediately.
    assert!(matches!(
        runtime.submit(&model, seq_matrix(2, model.input_cols(), 9)),
        Err(KronError::Shutdown)
    ));
    // And explicit shutdown still returns (join of the dead thread).
    runtime.shutdown();
}

/// The poisoned-gate panic leak, fixed: after a scheduler panic, a
/// submit from a **fresh thread** (one that never touched the runtime
/// before the panic) must return the documented `KronError::Shutdown` —
/// not panic. The old mutex-guarded gate could be left poisoned by the
/// panicking scheduler, and client threads then panicked on
/// `gate.lock().unwrap()` instead of erroring; the striped atomic gate
/// has no lock to poison, and this drill pins the contract.
#[test]
fn poisoned_runtime_rejects_fresh_thread_submits_without_panicking() {
    let clock = Clock::manual();
    let runtime = Runtime::new(RuntimeConfig {
        clock,
        ..dist_config(4)
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 14);
    let model = runtime.load_model(factors).unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().scheduler_panic_at_time(0))
        .unwrap();

    // Trip the panic: the first accepted request reaches the scheduler,
    // which panics before serving and poisons the runtime. Resolving the
    // ticket (or an immediate rejection) proves poisoning completed —
    // the gates close before pending tickets are failed.
    match runtime.submit(&model, seq_matrix(2, model.input_cols(), 1)) {
        Ok(t) => match t.wait() {
            Err(KronError::Shutdown) => {}
            other => panic!("expected Shutdown from poisoned runtime, got {other:?}"),
        },
        Err(KronError::Shutdown) => {}
        Err(other) => panic!("unexpected submit error {other:?}"),
    }

    // A fresh thread now submits (and opens a session) for the first
    // time. Both must fail with Shutdown; a panic would surface as a
    // join error.
    std::thread::scope(|s| {
        let result = s
            .spawn(|| {
                let submit = runtime.submit(&model, seq_matrix(2, model.input_cols(), 2));
                let mut session = runtime.session();
                let call = session.call(
                    &model,
                    seq_matrix(2, model.input_cols(), 3),
                    kron_core::Matrix::zeros(2, model.output_cols()),
                );
                (submit, call)
            })
            .join()
            .expect("fresh-thread submit must not panic on a poisoned runtime");
        assert!(
            matches!(result.0, Err(KronError::Shutdown)),
            "{:?}",
            result.0
        );
        assert!(
            matches!(result.1, Err(KronError::Shutdown)),
            "{:?}",
            result.1
        );
    });
    runtime.shutdown();
}

/// A device fault during `pin_model`'s pre-warm must evict the broken
/// entry instead of pinning a dead engine: the pin fails, the cache
/// drops the entry, and the next request builds fresh and serves.
#[test]
fn prewarm_fault_evicts_instead_of_pinning_a_dead_engine() {
    let runtime = Runtime::new(dist_config(4));
    let factors = model_factors(&[(4, 4), (4, 4)], 12);
    let model = runtime.load_model(factors.clone()).unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch(3, 0))
        .unwrap();

    match runtime.pin_model(&model) {
        Err(KronError::DeviceFailure { gpu, ref reason }) => {
            assert_eq!(gpu, 3);
            assert!(reason.contains("injected"), "{reason}");
        }
        other => panic!("expected DeviceFailure from pre-warm, got {other:?}"),
    }
    let stats = runtime.stats();
    assert!(
        stats.evictions >= 1,
        "broken entry must be evicted: {stats:?}"
    );
    assert_eq!(stats.cached_entries, 0, "nothing pinned: {stats:?}");
    assert_eq!(runtime.device_health()[3].consecutive_failures, 1);

    // The next request rebuilds from scratch and serves bit-exactly.
    let x = seq_matrix(4, model.input_cols(), 13);
    let expected = oracle(&x, &factors);
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "post-prewarm-fault serve");
    assert_eq!(runtime.stats().cached_entries, 1);

    // A clean pin after the fault works and survives pressure.
    let _pin = runtime.pin_model(&model).unwrap();
    assert!(runtime.stats().cached_entries >= 1);
}
