//! Synthetic stand-ins for the UCI datasets of Table 5.
//!
//! The paper trains on UCI regression sets (150 – 3×10⁵ points). The
//! *measurements* in Table 5 are training-time speedups, which depend only
//! on dataset size, dimensionality, and the chosen grid `Pᴺ` — not on the
//! actual feature values — so we synthesize data of the documented shape:
//! features uniform in `[0,1]^d`, targets a smooth nonlinear function plus
//! noise (DESIGN.md documents this substitution).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The UCI datasets used in Table 5, with their documented sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UciDataset {
    /// Auto MPG: 392 points, 7 features.
    AutoMpg,
    /// kin40k: 40 000 points, 8 features.
    Kin40k,
    /// Airfoil self-noise: 1 503 points, 5 features.
    Airfoil,
    /// Yacht hydrodynamics: 308 points, 6 features.
    Yacht,
    /// Servo: 167 points, 4 features.
    Servo,
    /// 3D Road network: 434 874 points, 3 features.
    ThreeDRoad,
}

impl UciDataset {
    /// Dataset name as printed in Table 5.
    pub fn name(self) -> &'static str {
        match self {
            UciDataset::AutoMpg => "autompg",
            UciDataset::Kin40k => "kin40k",
            UciDataset::Airfoil => "airfoil",
            UciDataset::Yacht => "yacht",
            UciDataset::Servo => "servo",
            UciDataset::ThreeDRoad => "3droad",
        }
    }

    /// Number of points in the real dataset.
    pub fn points(self) -> usize {
        match self {
            UciDataset::AutoMpg => 392,
            UciDataset::Kin40k => 40_000,
            UciDataset::Airfoil => 1_503,
            UciDataset::Yacht => 308,
            UciDataset::Servo => 167,
            UciDataset::ThreeDRoad => 434_874,
        }
    }

    /// Input dimensionality (`N` of the Kronecker kernel).
    pub fn dims(self) -> usize {
        match self {
            UciDataset::AutoMpg => 7,
            UciDataset::Kin40k => 8,
            UciDataset::Airfoil => 5,
            UciDataset::Yacht => 6,
            UciDataset::Servo => 4,
            UciDataset::ThreeDRoad => 3,
        }
    }

    /// All datasets, in Table 5 row order of first appearance.
    pub fn all() -> [UciDataset; 6] {
        [
            UciDataset::AutoMpg,
            UciDataset::Kin40k,
            UciDataset::Airfoil,
            UciDataset::Yacht,
            UciDataset::Servo,
            UciDataset::ThreeDRoad,
        ]
    }
}

/// A materialized (synthetic) regression dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset identity.
    pub source: UciDataset,
    /// Feature rows, each `dims` long, in `[0, 1]`.
    pub features: Vec<Vec<f64>>,
    /// Regression targets.
    pub targets: Vec<f64>,
}

impl Dataset {
    /// Synthesizes the dataset at its documented size.
    pub fn synthesize(source: UciDataset, seed: u64) -> Dataset {
        Self::synthesize_subsampled(source, seed, source.points())
    }

    /// Synthesizes with a reduced point count (for fast tests/examples
    /// while keeping dimensionality faithful).
    pub fn synthesize_subsampled(source: UciDataset, seed: u64, points: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
        let d = source.dims();
        let mut features = Vec::with_capacity(points);
        let mut targets = Vec::with_capacity(points);
        for _ in 0..points {
            let x: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
            // Smooth nonlinear response + mild noise.
            let y: f64 = x
                .iter()
                .enumerate()
                .map(|(i, &v)| ((i + 1) as f64 * v * std::f64::consts::PI).sin())
                .sum::<f64>()
                + 0.05 * (rng.random::<f64>() - 0.5);
            features.push(x);
            targets.push(y);
        }
        Dataset {
            source,
            features,
            targets,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documented_sizes() {
        assert_eq!(UciDataset::AutoMpg.points(), 392);
        assert_eq!(UciDataset::Kin40k.dims(), 8);
        assert_eq!(UciDataset::ThreeDRoad.points(), 434_874);
        assert_eq!(UciDataset::all().len(), 6);
    }

    #[test]
    fn synthesis_is_deterministic_and_in_range() {
        let a = Dataset::synthesize_subsampled(UciDataset::Servo, 7, 50);
        let b = Dataset::synthesize_subsampled(UciDataset::Servo, 7, 50);
        assert_eq!(a.features, b.features);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.len(), 50);
        for x in &a.features {
            assert_eq!(x.len(), 4);
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let c = Dataset::synthesize_subsampled(UciDataset::Servo, 8, 50);
        assert_ne!(a.features, c.features, "different seeds differ");
    }

    #[test]
    fn full_synthesis_matches_documented_count() {
        let d = Dataset::synthesize(UciDataset::Yacht, 1);
        assert_eq!(d.len(), 308);
        assert!(!d.is_empty());
    }
}
