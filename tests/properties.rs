//! Property-based tests (proptest) for the algebraic invariants every
//! Kron-Matmul engine must satisfy.

use fastkron::kron::algorithm::kron_matmul_fastkron;
use fastkron::kron::exec::Workspace;
use fastkron::prelude::*;
use kron_core::ftmmt::kron_matmul_ftmmt;
use kron_core::kron::kron_product;
use kron_core::naive::kron_matmul_naive;
use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::Matrix;
use proptest::prelude::*;

/// Strategy: factor dims in 1..=5.
fn dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=5, 1usize..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_two_factors(
        ((p1, q1), (p2, q2)) in (dims(), dims()),
        m in 1usize..=4,
        seed in 0u8..8,
    ) {
        let k = p1 * p2;
        let x = Matrix::<f64>::from_fn(m, k, |r, c| {
            ((seed as usize + r * k + 3 * c) % 9) as f64 - 4.0
        });
        let f1 = Matrix::<f64>::from_fn(p1, q1, |r, c| ((r * q1 + c + seed as usize) % 7) as f64 - 3.0);
        let f2 = Matrix::<f64>::from_fn(p2, q2, |r, c| ((r * q2 + c + 2 * seed as usize) % 5) as f64 - 2.0);
        let refs = [&f1, &f2];
        let naive = kron_matmul_naive(&x, &refs).unwrap();
        let fast = kron_matmul_fastkron(&x, &refs).unwrap();
        let shuffle = kron_matmul_shuffle(&x, &refs).unwrap();
        let ftmmt = kron_matmul_ftmmt(&x, &refs).unwrap();
        prop_assert_eq!(&fast, &naive);
        prop_assert_eq!(&shuffle, &naive);
        prop_assert_eq!(&ftmmt, &naive);
    }

    #[test]
    fn identity_factors_are_identity(m in 1usize..=4, p in 1usize..=4, n in 1usize..=4) {
        let k = p.pow(n as u32);
        let x = Matrix::<f64>::from_fn(m, k, |r, c| ((r * k + c) % 9) as f64 - 4.0);
        let id = Matrix::<f64>::identity(p);
        let refs: Vec<&Matrix<f64>> = (0..n).map(|_| &id).collect();
        let y = kron_matmul_fastkron(&x, &refs).unwrap();
        prop_assert_eq!(y, x);
    }

    #[test]
    fn linearity_in_x(p in 2usize..=4, m in 1usize..=3, a in -3i8..=3) {
        let k = p * p;
        let x1 = Matrix::<f64>::from_fn(m, k, |r, c| ((r + 2 * c) % 5) as f64 - 2.0);
        let x2 = Matrix::<f64>::from_fn(m, k, |r, c| ((3 * r + c) % 7) as f64 - 3.0);
        let f = Matrix::<f64>::from_fn(p, p, |r, c| ((r * p + c) % 5) as f64 - 2.0);
        let refs = [&f, &f];
        // a·K(x1) + K(x2) == K(a·x1 + x2)
        let y1 = kron_matmul_fastkron(&x1, &refs).unwrap();
        let y2 = kron_matmul_fastkron(&x2, &refs).unwrap();
        let combo = Matrix::<f64>::from_fn(m, k, |r, c| {
            f64::from(a) * x1[(r, c)] + x2[(r, c)]
        });
        let y_combo = kron_matmul_fastkron(&combo, &refs).unwrap();
        for r in 0..m {
            for c in 0..y_combo.cols() {
                let expect = f64::from(a) * y1[(r, c)] + y2[(r, c)];
                prop_assert!((y_combo[(r, c)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn factor_grouping_is_associative(p in 2usize..=3, m in 1usize..=3) {
        // X·(F1⊗F2⊗F3) computed with 3 factors equals X·((F1⊗F2)⊗F3)
        // computed with 2 (pre-multiplied) factors.
        let k = p * p * p;
        let x = Matrix::<f64>::from_fn(m, k, |r, c| ((r * 5 + c) % 11) as f64 - 5.0);
        let f1 = Matrix::<f64>::from_fn(p, p, |r, c| ((r + c) % 3) as f64 - 1.0);
        let f2 = Matrix::<f64>::from_fn(p, p, |r, c| ((2 * r + c) % 5) as f64 - 2.0);
        let f3 = Matrix::<f64>::from_fn(p, p, |r, c| ((r + 2 * c) % 7) as f64 - 3.0);
        let direct = kron_matmul_fastkron(&x, &[&f1, &f2, &f3]).unwrap();
        let f12 = kron_product(&f1, &f2);
        let grouped = kron_matmul_fastkron(&x, &[&f12, &f3]).unwrap();
        prop_assert_eq!(direct, grouped);
    }

    #[test]
    fn planned_engine_matches_reference(
        m in 1usize..=4,
        p in 2usize..=4,
        n in 2usize..=3,
        seed in 0usize..16,
    ) {
        let problem = KronProblem::uniform(m, p, n).unwrap();
        let k = problem.input_cols();
        let x = Matrix::<f64>::from_fn(m, k, |r, c| ((seed + r * 7 + c) % 13) as f64 - 6.0);
        let fs: Vec<Matrix<f64>> = (0..n)
            .map(|i| Matrix::from_fn(p, p, |r, c| ((seed + i + r * p + c) % 9) as f64 - 4.0))
            .collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let plan = FastKron::plan::<f64>(&problem, &V100).unwrap();
        let via_plan = plan.execute(&x, &refs).unwrap();
        let via_emulation = plan.execute_emulated(&x, &refs).unwrap();
        let reference = kron_matmul_naive(&x, &refs).unwrap();
        prop_assert_eq!(&via_plan, &reference);
        prop_assert_eq!(&via_emulation, &reference);
    }

    #[test]
    fn distributed_matches_reference(
        gpus_log2 in 0u32..=4,
        p in 2usize..=4,
        seed in 0usize..8,
    ) {
        let gpus = 1usize << gpus_log2;
        let n = 4; // K = p^4 keeps GK <= P satisfiable for p >= 2, GK <= 4
        let m = 16;
        let problem = KronProblem::uniform(m, p, n).unwrap();
        let engine = match fastkron::dist::DistFastKron::new(&V100, gpus) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let k = problem.input_cols();
        let x = Matrix::<f64>::from_fn(m, k, |r, c| ((seed + r * 3 + c) % 7) as f64 - 3.0);
        let fs: Vec<Matrix<f64>> = (0..n)
            .map(|i| Matrix::from_fn(p, p, |r, c| ((seed + 2 * i + r + c) % 5) as f64 - 2.0))
            .collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        // Some grids are invalid for small P (GK > P); that is a
        // documented constraint, not a failure.
        if let Ok(y) = engine.execute(&x, &refs) {
            let reference = kron_matmul_naive(&x, &refs).unwrap();
            prop_assert_eq!(y, reference);
        }
    }

    #[test]
    fn fused_exec_matches_oracles_rectangular(
        ((p1, q1), (p2, q2)) in (dims(), dims()),
        m in 1usize..=4,
        seed in 0u8..8,
    ) {
        // Rectangular two-factor chains through the Workspace entry point:
        // the fused epilogue must equal both reference algorithms, f64 and
        // f32 (integer-valued data keeps both exact).
        let problem = KronProblem::new(
            m,
            vec![FactorShape::new(p1, q1), FactorShape::new(p2, q2)],
        ).unwrap();
        let k = problem.input_cols();
        let x = Matrix::<f64>::from_fn(m, k, |r, c| {
            ((seed as usize + 2 * r * k + c) % 9) as f64 - 4.0
        });
        let f1 = Matrix::<f64>::from_fn(p1, q1, |r, c| ((r * q1 + 3 * c + seed as usize) % 7) as f64 - 3.0);
        let f2 = Matrix::<f64>::from_fn(p2, q2, |r, c| ((r * q2 + c + 2 * seed as usize) % 5) as f64 - 2.0);
        let refs = [&f1, &f2];
        let fused = Workspace::new(&problem).execute(&x, &refs).unwrap();
        prop_assert_eq!(&fused, &kron_matmul_naive(&x, &refs).unwrap());
        prop_assert_eq!(&fused, &kron_matmul_shuffle(&x, &refs).unwrap());

        let xf = Matrix::<f32>::from_fn(m, k, |r, c| x[(r, c)] as f32);
        let g1 = Matrix::<f32>::from_fn(p1, q1, |r, c| f1[(r, c)] as f32);
        let g2 = Matrix::<f32>::from_fn(p2, q2, |r, c| f2[(r, c)] as f32);
        let refs32 = [&g1, &g2];
        let fused32 = Workspace::new(&problem).execute(&xf, &refs32).unwrap();
        prop_assert_eq!(&fused32, &kron_matmul_shuffle(&xf, &refs32).unwrap());
    }

    #[test]
    fn fused_exec_matches_oracles_mixed_chains(
        variant in 0usize..4,
        m in 1usize..=3,
        seed in 0u8..8,
    ) {
        // Table 4-style mixed chains (square runs interleaved with small
        // rectangular factors) of length 3-4.
        let shapes: Vec<FactorShape> = match variant {
            0 => vec![FactorShape::square(5), FactorShape::square(2), FactorShape::square(5)],
            1 => vec![FactorShape::new(2, 3), FactorShape::new(3, 2), FactorShape::square(4)],
            2 => vec![FactorShape::square(2); 4],
            _ => vec![FactorShape::new(2, 5), FactorShape::square(3), FactorShape::new(5, 2)],
        };
        let problem = KronProblem::new(m, shapes.clone()).unwrap();
        let k = problem.input_cols();
        let x = Matrix::<f64>::from_fn(m, k, |r, c| {
            ((seed as usize + r * k + 5 * c) % 11) as f64 - 5.0
        });
        let fs: Vec<Matrix<f64>> = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Matrix::from_fn(s.p, s.q, |r, c| {
                    ((seed as usize + i + 2 * r * s.q + c) % 7) as f64 - 3.0
                })
            })
            .collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let fused = Workspace::new(&problem).execute(&x, &refs).unwrap();
        prop_assert_eq!(&fused, &kron_matmul_naive(&x, &refs).unwrap());
        prop_assert_eq!(&fused, &kron_matmul_shuffle(&x, &refs).unwrap());
    }

    #[test]
    fn fused_exec_matches_oracles_single_factor(
        (p, q) in dims(),
        m in 1usize..=5,
        seed in 0u8..8,
    ) {
        // Single-factor chains stream X straight to Y (no ping-pong);
        // degenerate but load-bearing: it is a plain GEMM in disguise.
        let problem = KronProblem::new(m, vec![FactorShape::new(p, q)]).unwrap();
        let x = Matrix::<f64>::from_fn(m, p, |r, c| ((seed as usize + r * p + c) % 9) as f64 - 4.0);
        let f = Matrix::<f64>::from_fn(p, q, |r, c| ((r * q + c + seed as usize) % 5) as f64 - 2.0);
        let fused = Workspace::new(&problem).execute(&x, &[&f]).unwrap();
        prop_assert_eq!(&fused, &kron_matmul_naive(&x, &[&f]).unwrap());
        prop_assert_eq!(&fused, &kron_matmul_shuffle(&x, &[&f]).unwrap());

        let xf = Matrix::<f32>::from_fn(m, p, |r, c| x[(r, c)] as f32);
        let g = Matrix::<f32>::from_fn(p, q, |r, c| f[(r, c)] as f32);
        let fused32 = Workspace::new(&problem).execute(&xf, &[&g]).unwrap();
        prop_assert_eq!(&fused32, &kron_matmul_shuffle(&xf, &[&g]).unwrap());
    }

    #[test]
    fn kron_product_transpose_identity(
        (p1, q1) in dims(),
        (p2, q2) in dims(),
    ) {
        // (A ⊗ B)^T = A^T ⊗ B^T.
        let a = Matrix::<f64>::from_fn(p1, q1, |r, c| ((r * q1 + c) % 5) as f64 - 2.0);
        let b = Matrix::<f64>::from_fn(p2, q2, |r, c| ((r + c * p2) % 7) as f64 - 3.0);
        let left = kron_product(&a, &b).transpose();
        let right = kron_product(&a.transpose(), &b.transpose());
        prop_assert_eq!(left, right);
    }
}
