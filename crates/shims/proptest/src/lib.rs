//! Vendored API-subset shim of [proptest](https://crates.io/crates/proptest).
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range and tuple [`Strategy`]s, and the `prop_assert!`/`prop_assert_eq!`
//! assertion macros. Generation is deterministic (SplitMix64 seeded from the
//! test name) so failures are reproducible; there is no shrinking — the
//! failing inputs are printed instead.

#![deny(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion; produced by [`prop_assert!`] and friends.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic SplitMix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (e.g. the test name), so
    /// every run of a given test sees the same case sequence.
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-range sizes (bound << 2^64).
        self.next_u64() % bound
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
///
/// Only generation is supported (no shrinking); `Value` must be `Debug` so
/// failing inputs can be reported.
pub trait Strategy {
    /// The type of the generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Declares deterministic property tests, mirroring `proptest::proptest!`.
///
/// Accepted grammar (the subset used in this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0usize..16, (a, b) in (0u8..4, 0u8..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( #[test] fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let values = ( $( $crate::Strategy::generate(&($strat), &mut rng), )* );
                    let shown = format!("{values:?}");
                    let ( $($arg,)* ) = values;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case}/{}:\n  {e}\n  inputs: {shown}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion: early-returns a [`TestCaseError`] when `cond` fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Property equality assertion mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(1usize..=5), &mut rng);
            assert!((1..=5).contains(&v));
            let w = Strategy::generate(&(-3i8..=3), &mut rng);
            assert!((-3..=3).contains(&w));
            let u = Strategy::generate(&(0u8..8), &mut rng);
            assert!(u < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts((a, b) in (0usize..10, 0usize..10), c in 1usize..=3) {
            prop_assert!(a < 10 && b < 10, "range violated: {a}, {b}");
            prop_assert_eq!(c * 2 / 2, c);
            if a == usize::MAX {
                return Ok(()); // exercise early-return support
            }
        }
    }

    #[test]
    fn assertion_macros_produce_errors() {
        let failing = |v: usize| -> Result<(), TestCaseError> {
            prop_assert!(v > 100, "v was {v}");
            Ok(())
        };
        assert!(failing(3).is_err());
        assert!(failing(101).is_ok());
        let eq = |a: usize, b: usize| -> Result<(), TestCaseError> {
            prop_assert_eq!(a, b);
            Ok(())
        };
        assert!(eq(1, 2).unwrap_err().to_string().contains("left"));
        assert!(eq(2, 2).is_ok());
    }
}
