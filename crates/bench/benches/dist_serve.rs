//! Distributed serving bench: the `kron-runtime` `Distributed` backend on
//! the paper's Figure 11 uniform shapes, emitting `BENCH_dist_serve.json`
//! at the repo root.
//!
//! Two measurements per shape:
//!
//! * **Simulated speedup** (`speedup_vs_single`, the gate) — simulated
//!   wall-clock of the sharded Algorithm 2 execution on 8 GPUs versus one
//!   device, both priced by the same trace-driven cost model at the
//!   paper's full `M`. This is the number Figure 11 reports, and it is
//!   host-independent — the right gate on a container whose real core
//!   count has nothing to do with the simulated machine.
//! * **Functional serving** (correctness + wall-clock, informational) —
//!   the runtime *actually serves* each shape at a CPU-scaled `M`
//!   (`BENCH_exec.json` precedent) through both backends, every result
//!   checked against the shuffle oracle, per-request simulated stats
//!   flowing back through `Ticket::wait_with_stats`.
//!
//! Gate: sharded simulated serving ≥ 1.5× single-device on ≥ 6 of 8
//! shapes (and every functional check passes), else exit 1.

use gpu_sim::device::V100;
use kron_core::{assert_matrices_close, KronProblem, Matrix};
use kron_dist::DistFastKron;
use kron_runtime::{Backend, Runtime, RuntimeConfig, Ticket};
use std::time::Instant;

/// Simulated GPUs in the sharded configuration (a DGX-style machine).
const GPUS: usize = 8;

/// Figure 11 uniform shapes `(m, p, n)` at the paper's scale (used for the
/// simulated gate).
const CASES: &[(usize, usize, usize)] = &[
    (1024, 64, 3),
    (512, 64, 3),
    (1024, 32, 4),
    (512, 32, 4),
    (1024, 16, 4),
    (512, 16, 4),
    (1024, 128, 2),
    (512, 128, 2),
];

/// Rows actually served functionally per shape (CPU-scaled `M`, split into
/// `SCALED_M` single-row requests batched by the runtime).
const SCALED_M: usize = 8;

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 3 * r * cols + c) % 13) as f32 - 6.0
    })
}

struct CaseResult {
    m: usize,
    p: usize,
    n: usize,
    sim_single_ms: f64,
    sim_dist_ms: f64,
    speedup_vs_single: f64,
    sim_comm_gb: f64,
    served_rows: usize,
    dist_rps: f64,
    single_rps: f64,
    served_comm_bytes: u64,
}

/// Serves `SCALED_M` single-row requests of the scaled shape as one linked
/// batch; returns wall-clock requests/second and the summed per-request
/// simulated communication bytes.
fn serve_scaled(
    runtime: &Runtime,
    factors: &[Matrix<f32>],
    x_all: &Matrix<f32>,
    oracle_rows: &Matrix<f32>,
    label: &str,
) -> (f64, u64) {
    let model = runtime.load_model(factors.to_vec()).expect("load model");
    let k = model.input_cols();
    let xs: Vec<Matrix<f32>> = (0..SCALED_M)
        .map(|i| Matrix::from_fn(1, k, |_, c| x_all[(i, c)]))
        .collect();
    let t0 = Instant::now();
    let tickets: Vec<Ticket<f32>> = runtime
        .submit_linked(xs.into_iter().map(|x| (&model, x)).collect())
        .expect("linked submit");
    let mut comm = 0u64;
    for (i, t) in tickets.into_iter().enumerate() {
        let (y, stats) = t.wait_with_stats().expect("serve");
        let expected = Matrix::from_fn(1, model.output_cols(), |_, c| oracle_rows[(i, c)]);
        assert_matrices_close(&y, &expected, &format!("{label} row {i}"));
        comm += stats.map_or(0, |s| s.comm_bytes);
    }
    let wall = t0.elapsed().as_secs_f64();
    (SCALED_M as f64 / wall, comm)
}

fn run_case(dist_rt: &Runtime, single_rt: &Runtime, m: usize, p: usize, n: usize) -> CaseResult {
    // Simulated gate at the paper's full M.
    let problem = KronProblem::uniform(m, p, n).expect("valid case");
    let single = DistFastKron::new(&V100, 1).expect("grid");
    let sharded = DistFastKron::new(&V100, GPUS).expect("grid");
    let rep_single = single.simulate::<f32>(&problem).expect("simulate single");
    let rep_dist = sharded.simulate::<f32>(&problem).expect("simulate sharded");

    // Functional serving at CPU-scaled M through both backends.
    let factors: Vec<Matrix<f32>> = (0..n).map(|i| seq_matrix(p, p, i + 2)).collect();
    let refs: Vec<&Matrix<f32>> = factors.iter().collect();
    let x_all = seq_matrix(SCALED_M, problem.input_cols(), 1);
    let oracle = kron_core::shuffle::kron_matmul_shuffle(&x_all, &refs).expect("oracle");
    let (dist_rps, served_comm_bytes) =
        serve_scaled(dist_rt, &factors, &x_all, &oracle, &format!("dist {p}^{n}"));
    let (single_rps, _) = serve_scaled(
        single_rt,
        &factors,
        &x_all,
        &oracle,
        &format!("single {p}^{n}"),
    );

    CaseResult {
        m,
        p,
        n,
        sim_single_ms: rep_single.seconds * 1e3,
        sim_dist_ms: rep_dist.seconds * 1e3,
        speedup_vs_single: rep_single.seconds / rep_dist.seconds,
        sim_comm_gb: rep_dist.comm_bytes as f64 / 1e9,
        served_rows: SCALED_M,
        dist_rps,
        single_rps,
        served_comm_bytes,
    }
}

fn emit_json(results: &[CaseResult]) -> String {
    let cases: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"m\": {}, \"p\": {}, \"n\": {},\n",
                    "     \"sim_single_ms\": {:.4}, \"sim_dist_ms\": {:.4},\n",
                    "     \"speedup_vs_single\": {:.3}, \"sim_comm_gb\": {:.4},\n",
                    "     \"served_rows\": {}, \"dist_rps\": {:.1}, \"single_rps\": {:.1},\n",
                    "     \"served_comm_bytes\": {}}}"
                ),
                r.m,
                r.p,
                r.n,
                r.sim_single_ms,
                r.sim_dist_ms,
                r.speedup_vs_single,
                r.sim_comm_gb,
                r.served_rows,
                r.dist_rps,
                r.single_rps,
                r.served_comm_bytes,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"dist_serve\",\n",
            "  \"description\": \"runtime Distributed backend on Figure 11 uniform shapes: \
             simulated 8-GPU sharding vs single device (gate), functional serving at \
             CPU-scaled M (correctness + informational wall-clock)\",\n",
            "  \"dtype\": \"f32\",\n",
            "  \"gpus\": {},\n",
            "  \"scaled_m\": {},\n",
            "  \"gate\": \"speedup_vs_single >= 1.5 on >= 6/8 shapes\",\n",
            "  \"cases\": [\n{}\n  ]\n",
            "}}\n"
        ),
        GPUS,
        SCALED_M,
        cases.join(",\n")
    )
}

fn main() {
    let dist_rt = Runtime::new(RuntimeConfig {
        max_batch_rows: SCALED_M,
        batch_max_m: SCALED_M,
        max_queue: 64,
        backend: Backend::Distributed {
            gpus: GPUS,
            p2p: false,
        },
        ..RuntimeConfig::default()
    });
    let single_rt = Runtime::new(RuntimeConfig {
        max_batch_rows: SCALED_M,
        batch_max_m: SCALED_M,
        max_queue: 64,
        ..RuntimeConfig::default()
    });

    println!(
        "{:>12} {:>12} {:>12} {:>9} {:>10} {:>10}",
        "case", "sim 1GPU ms", "sim 8GPU ms", "speedup", "dist r/s", "single r/s"
    );
    let mut results = Vec::new();
    for &(m, p, n) in CASES {
        let r = run_case(&dist_rt, &single_rt, m, p, n);
        println!(
            "{:>12} {:>12.3} {:>12.3} {:>8.2}x {:>10.1} {:>10.1}",
            format!("M={m} {p}^{n}"),
            r.sim_single_ms,
            r.sim_dist_ms,
            r.speedup_vs_single,
            r.dist_rps,
            r.single_rps,
        );
        results.push(r);
    }

    let json = emit_json(&results);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dist_serve.json");
    std::fs::write(path, &json).expect("write BENCH_dist_serve.json");
    println!("\nwrote {path}");

    let stats = dist_rt.stats();
    println!(
        "distributed runtime totals: served={} sharded_batches={} comm_bytes={} \
         local_fallbacks={} plan hits/misses={}/{}",
        stats.served,
        stats.sharded_batches,
        stats.comm_bytes,
        stats.local_fallbacks,
        stats.plan_hits,
        stats.plan_misses
    );

    // Acceptance gates. (1) Simulated sharded serving ≥ 1.5× single-device
    // on ≥ 6/8 Figure 11 shapes. (2) Every shape actually sharded when
    // served (no silent fallback). Functional correctness already asserted
    // per request above.
    let wins = results
        .iter()
        .filter(|r| r.speedup_vs_single >= 1.5)
        .count();
    let mut failed = false;
    if wins >= 6 {
        println!(
            "simulated sharded ≥ 1.5x single-device on {wins}/{} shapes",
            results.len()
        );
    } else {
        println!(
            "FAIL: simulated sharded ≥ 1.5x single-device on only {wins}/{} shapes",
            results.len()
        );
        failed = true;
    }
    if stats.local_fallbacks == 0 && stats.sharded_batches >= CASES.len() as u64 {
        println!("every served batch sharded across the grid");
    } else {
        println!(
            "FAIL: sharding did not engage everywhere (sharded={} fallbacks={})",
            stats.sharded_batches, stats.local_fallbacks
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
