//! Counting-allocator proof of the runtime's steady-state contract: after
//! warmup, serving a request through a [`Session`] performs **zero heap
//! allocations** across the whole process — client submit, channel
//! handoff, scheduler batching scratch, plan-cache lookup, fused execute,
//! and reply all reuse warmed state.
//!
//! This extends `fastkron-core`'s `alloc_free` test (which proves the
//! execute path alone is allocation-free) up through the serving stack.
//! The allocator counts from every thread, so the scheduler thread is
//! covered, not just the client.

use kron_core::{assert_matrices_close, Matrix};
use kron_runtime::{Runtime, RuntimeConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, result)
}

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + r * cols + c) % 13) as f64 - 6.0
    })
}

#[test]
fn steady_state_serving_is_allocation_free() {
    let runtime = Runtime::<f64>::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 64,
        ..RuntimeConfig::default()
    });
    // A Table 3/4-style small-M serving shape: M=4 against 4⊗4 factors.
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    let mut session = runtime.session();

    let mut x = seq_matrix(4, model.input_cols(), 3);
    let mut y = Matrix::zeros(4, model.output_cols());

    // Warmup: grows the channel queue, scheduler scratch, plan cache
    // entry (tuned plan + workspace), and the session slot to their
    // steady-state capacities.
    for _ in 0..16 {
        (x, y) = session.call(&model, x, y).unwrap();
    }

    const SERVED: usize = 64;
    let (allocs, moved) = allocations_during(|| {
        let mut bufs = (x, y);
        for _ in 0..SERVED {
            bufs = session.call(&model, bufs.0, bufs.1).unwrap();
        }
        bufs
    });
    let (x, y) = moved;
    assert_eq!(
        allocs, 0,
        "serving {SERVED} warm requests allocated {allocs} times \
         (expected zero steady-state allocations per served request)"
    );

    // The served results are still right, not just cheap.
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let oracle = kron_core::shuffle::kron_matmul_shuffle(&x, &refs).unwrap();
    assert_matrices_close(&y, &oracle, "steady-state result");

    // And the cache really did plan exactly once for this shape.
    let stats = runtime.stats();
    assert_eq!(stats.plan_misses, 1, "stats: {stats:?}");
    assert_eq!(stats.served, 16 + SERVED as u64);
}
