//! Sparse grid-interpolation matrix `W` (the "I" in SKI).
//!
//! Each data point interpolates linearly between its two neighbouring grid
//! points per dimension, so a row of `W[n × Pᴺ]` has `2ᴺ` nonzeros whose
//! weights sum to one. Stored in CSR-like form; only the two products the
//! GP needs are implemented (`V·Wᵀ` and `V·W` for batched row vectors).

use crate::grid::InducingGrid;
use kron_core::{Element, KronError, Matrix, Result};

/// Sparse interpolation matrix in row-compressed form.
#[derive(Debug, Clone)]
pub struct SparseInterp {
    rows: usize,
    cols: usize,
    /// Per row: (grid column, weight) pairs.
    entries: Vec<Vec<(usize, f64)>>,
}

impl SparseInterp {
    /// Builds `W` for `points` (each a `dims`-length coordinate in
    /// `[0, 1]`) against `grid`.
    ///
    /// # Errors
    /// [`KronError::ShapeMismatch`] when a point's dimensionality differs
    /// from the grid's.
    pub fn build(grid: &InducingGrid, points: &[Vec<f64>]) -> Result<Self> {
        let p = grid.points_per_dim;
        let cols = grid.total_points();
        let mut entries = Vec::with_capacity(points.len());
        for (idx, x) in points.iter().enumerate() {
            if x.len() != grid.dims {
                return Err(KronError::ShapeMismatch {
                    expected: format!("{}-dimensional point", grid.dims),
                    found: format!("point {idx} with {} dims", x.len()),
                });
            }
            // Per dimension: the left neighbour index and the right weight.
            let mut dim_supports: Vec<[(usize, f64); 2]> = Vec::with_capacity(grid.dims);
            for &xi in x {
                let xi = xi.clamp(0.0, 1.0);
                let scaled = xi / grid.spacing();
                let left = (scaled.floor() as usize).min(p.saturating_sub(2));
                let right = (left + 1).min(p - 1);
                let frac = (scaled - left as f64).clamp(0.0, 1.0);
                dim_supports.push([(left, 1.0 - frac), (right, frac)]);
            }
            // Tensor product of per-dimension supports → 2ᴺ entries.
            let mut row: Vec<(usize, f64)> = vec![(0, 1.0)];
            for support in &dim_supports {
                let mut next = Vec::with_capacity(row.len() * 2);
                for &(col, w) in &row {
                    for &(gi, gw) in support {
                        if gw > 0.0 {
                            next.push((col * p + gi, w * gw));
                        }
                    }
                }
                row = next;
            }
            entries.push(row);
        }
        Ok(SparseInterp {
            rows: points.len(),
            cols,
            entries,
        })
    }

    /// Number of data points (rows of `W`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of inducing points (columns of `W`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// Batched `V · Wᵀ`: `V[s × n] → [s × Pᴺ]`… i.e. for each batch row
    /// `v`, computes `Wᵀ v` (scatter data values onto the grid).
    ///
    /// # Errors
    /// [`KronError::ShapeMismatch`] if `V.cols() != n`.
    pub fn scatter<T: Element>(&self, v: &Matrix<T>) -> Result<Matrix<T>> {
        if v.cols() != self.rows {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} cols", self.rows),
                found: format!("{} cols", v.cols()),
            });
        }
        let mut out = Matrix::zeros(v.rows(), self.cols);
        for s in 0..v.rows() {
            let src = v.row(s);
            let dst = out.row_mut(s);
            for (i, row) in self.entries.iter().enumerate() {
                let val = src[i];
                for &(col, w) in row {
                    dst[col] += val * T::from_f64(w);
                }
            }
        }
        Ok(out)
    }

    /// Batched `U · W… `: for each batch row `u` (length `Pᴺ`), computes
    /// `W u` (gather grid values back to the data points), giving
    /// `[s × n]`.
    ///
    /// # Errors
    /// [`KronError::ShapeMismatch`] if `U.cols() != Pᴺ`.
    pub fn gather<T: Element>(&self, u: &Matrix<T>) -> Result<Matrix<T>> {
        if u.cols() != self.cols {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} cols", self.cols),
                found: format!("{} cols", u.cols()),
            });
        }
        let mut out = Matrix::zeros(u.rows(), self.rows);
        for s in 0..u.rows() {
            let src = u.row(s);
            let dst = out.row_mut(s);
            for (i, row) in self.entries.iter().enumerate() {
                let mut acc = T::ZERO;
                for &(col, w) in row {
                    acc += src[col] * T::from_f64(w);
                }
                dst[i] = acc;
            }
        }
        Ok(out)
    }

    /// Dense materialization (tests only).
    pub fn to_dense<T: Element>(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (i, row) in self.entries.iter().enumerate() {
            for &(col, w) in row {
                m[(i, col)] = T::from_f64(w);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::gemm::gemm;

    fn grid(dims: usize, p: usize) -> InducingGrid {
        InducingGrid::new(dims, p, 0.3).unwrap()
    }

    #[test]
    fn weights_sum_to_one() {
        let g = grid(3, 5);
        let pts = vec![
            vec![0.1, 0.5, 0.9],
            vec![0.0, 1.0, 0.33],
            vec![0.77, 0.2, 0.6],
        ];
        let w = SparseInterp::build(&g, &pts).unwrap();
        for row in &w.entries {
            let sum: f64 = row.iter().map(|&(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row weight sum {sum}");
        }
        assert!(w.nnz() <= 3 * 8);
    }

    #[test]
    fn exact_on_grid_points() {
        // A data point exactly on a grid point has one unit weight there.
        let g = grid(2, 5);
        let pts = vec![vec![0.25, 0.75]];
        let w = SparseInterp::build(&g, &pts).unwrap();
        let significant: Vec<_> = w.entries[0].iter().filter(|&&(_, v)| v > 1e-12).collect();
        assert_eq!(significant.len(), 1);
        // Column = 1·5 + 3 (row-major over dims).
        assert_eq!(significant[0].0, 5 + 3);
        assert!((significant[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scatter_gather_match_dense() {
        let g = grid(2, 4);
        let pts = vec![
            vec![0.2, 0.9],
            vec![0.5, 0.5],
            vec![0.8, 0.1],
            vec![0.35, 0.65],
        ];
        let w = SparseInterp::build(&g, &pts).unwrap();
        let dense = w.to_dense::<f64>();
        let v = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 - 5.0);
        // scatter = V · W (dense): rows of V times W.
        let got = w.scatter(&v).unwrap();
        let want = gemm(&v, &dense).unwrap();
        kron_core::assert_matrices_close(&got, &want, "scatter");
        let u = Matrix::from_fn(3, 16, |r, c| ((r * 16 + c) % 7) as f64 - 3.0);
        let got2 = w.gather(&u).unwrap();
        let want2 = gemm(&u, &dense.transpose()).unwrap();
        kron_core::assert_matrices_close(&got2, &want2, "gather");
    }

    #[test]
    fn rejects_bad_shapes() {
        let g = grid(2, 4);
        assert!(SparseInterp::build(&g, &[vec![0.5]]).is_err());
        let w = SparseInterp::build(&g, &[vec![0.5, 0.5]]).unwrap();
        assert!(w.scatter(&Matrix::<f64>::zeros(1, 3)).is_err());
        assert!(w.gather(&Matrix::<f64>::zeros(1, 3)).is_err());
    }

    #[test]
    fn clamps_out_of_range_points() {
        let g = grid(1, 4);
        let w = SparseInterp::build(&g, &[vec![-0.5], vec![1.5]]).unwrap();
        for row in &w.entries {
            let sum: f64 = row.iter().map(|&(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }
}
