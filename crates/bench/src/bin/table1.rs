//! Table 1: execution-time split of GPyTorch (matmul vs transpose),
//! COGENT, and FastKron for M = 1024 and the largest P^N (float).

use bench::{fmt_seconds, table1_cases};
use gpu_sim::device::V100;
use kron_baselines::{Engine, FastKronEngine, FtmmtEngine, ShuffleEngine};
use kron_core::KronProblem;

fn main() {
    println!("Table 1 — GPyTorch matmul/transpose split vs COGENT vs FastKron (M=1024, float)");
    println!(
        "{:>3} {:>3} | {:>12} {:>12} {:>12} | {:>12} | {:>12}",
        "P", "N", "GPy-Matmul", "GPy-Trans", "GPy-Total", "COGENT", "FastKron"
    );
    for (p, n) in table1_cases() {
        let problem = KronProblem::uniform(1024, p, n).expect("valid case");
        let gp = Engine::<f32>::simulate(&ShuffleEngine::new(&V100), &problem).unwrap();
        let co = Engine::<f32>::simulate(&FtmmtEngine::new(&V100), &problem).unwrap();
        let fk = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem).unwrap();
        println!(
            "{:>3} {:>3} | {:>12} {:>12} {:>12} | {:>12} | {:>12}",
            p,
            n,
            fmt_seconds(gp.step_seconds("matmul")),
            fmt_seconds(gp.step_seconds("transpose")),
            fmt_seconds(gp.seconds),
            fmt_seconds(co.seconds),
            fmt_seconds(fk.seconds),
        );
    }
    println!("\nPaper (ms): (8,6): 26/45/71 | 36.4 | 5.76   (16,5): 64/169/238 | 104 | 29.7");
    println!("            (32,4): 44/159/203 | 64.4 | 38.8  (64,3): 8.7/36/45.7 | 14.8 | 8.74");
}
