//! The shape-keyed plan + workspace cache: the reason steady-state serving
//! does zero planning and zero allocation per request.
//!
//! Entries are indexed by `(factor-shape-chain hash, row capacity)` — a
//! hash over two integers, so lookups themselves are allocation-free —
//! and each entry carries the full [`PlanKey`] (problem shape × dtype ×
//! device × backend/grid) for introspection and as the structural
//! identity the integer key stands in for (every hit re-verifies the full
//! chain against the entry's key, so a 64-bit hash collision costs one
//! rebuild, never a wrong-shape workspace). Keying on *shapes* rather
//! than model identity means same-shape models — the multi-tenant case —
//! share plans, workspaces, and sharded engines: execution state depends
//! only on shapes; factor values arrive with each execute. A
//! capacity-`max_batch_rows` entry serves every small-`M` request and
//! batch of its shape; solo large-`M` requests get entries at
//! power-of-two capacities so nearby sizes share workspaces instead of
//! fragmenting the cache.
//!
//! Each entry owns one of two compute states, selected by the runtime's
//! [`Backend`]:
//!
//! * **Local** — an autotuned [`KronPlan`] plus a fused-path
//!   [`Workspace`], exactly the single-device serving state.
//! * **Sharded** — a persistent [`ShardedEngine`]: simulated-GPU worker
//!   threads and a fabric, planned once for the entry's row capacity
//!   (rounded up to a `GM` multiple so any batch can zero-pad to shard).
//!   Models the grid cannot shard (non-uniform factors, indivisible `K`)
//!   fall back to a Local entry, counted in
//!   [`crate::RuntimeStats::local_fallbacks`].

use crate::runtime::{Backend, ModelInner, StatsInner};
use fastkron_core::{FastKron, KronPlan, Workspace};
use gpu_sim::device::DeviceSpec;
use gpu_sim::ExecSummary;
use kron_core::{Element, KronError, KronProblem, Matrix, PlanKey, Result};
use kron_dist::{CommModel, GpuGrid, ShardedEngine};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::Ordering;

/// The execution state behind one cache entry.
pub(crate) enum Compute<T: Element> {
    /// Single-device fused path: the autotuned plan (kept for launch
    /// counts / simulated pricing) and its reusable workspace.
    Local {
        /// The autotuned plan the workspace was derived from (boxed to
        /// keep the variant lean; it is introspection-only).
        #[allow(dead_code)]
        plan: Box<KronPlan<T>>,
        /// Reusable ping-pong execution workspace.
        workspace: Workspace<T>,
    },
    /// Sharded across the simulated GPU grid (boxed: the engine carries
    /// its device spec, grid state, and lazy report, dwarfing a
    /// workspace; it prices its own simulation internally).
    Sharded(Box<ShardedEngine<T>>),
}

/// One cached execution state: the structural key, the compute state, and
/// (for batch-capacity entries) the gather/scatter staging buffers.
pub(crate) struct CachedPlan<T: Element> {
    /// Structural identity of this entry.
    pub(crate) key: PlanKey,
    /// The compute state requests execute through.
    pub(crate) compute: Compute<T>,
    /// Row-stacked input/output staging for multi-request batches (and for
    /// sharded solos, which need padding), allocated on first use.
    batch: Option<(Matrix<T>, Matrix<T>)>,
}

impl<T: Element> CachedPlan<T> {
    /// Whether requests through this entry execute sharded.
    pub(crate) fn is_sharded(&self) -> bool {
        matches!(self.compute, Compute::Sharded(_))
    }

    /// The batch staging buffers, allocating them on first use.
    pub(crate) fn batch_buffers(&mut self) -> &mut (Matrix<T>, Matrix<T>) {
        if self.batch.is_none() {
            let problem = &self.key.problem;
            self.batch = Some((
                Matrix::zeros(problem.m, problem.input_cols()),
                Matrix::zeros(problem.m, problem.output_cols()),
            ));
        }
        self.batch.as_mut().expect("just ensured")
    }

    /// Arms a one-shot device fault on a sharded entry; returns whether
    /// the entry could take it (Local entries have no devices to fault).
    pub(crate) fn arm_fault(&mut self, gpu: usize) -> bool {
        match &mut self.compute {
            Compute::Sharded(engine) => engine.inject_fault(gpu).is_ok(),
            Compute::Local { .. } => false,
        }
    }

    /// Runs the compute state over the staged batch's first `rows` rows.
    /// Sharded entries zero-pad up to the next `GM` multiple (the padding
    /// always fits: the capacity is a `GM` multiple ≥ `rows`).
    pub(crate) fn run_batch(&mut self, factors: &[&Matrix<T>], rows: usize) -> Result<()> {
        let (bx, by) = self.batch.as_mut().expect("gather before run");
        match &mut self.compute {
            Compute::Local { workspace, .. } => workspace.execute_rows(bx, factors, by, rows),
            Compute::Sharded(engine) => {
                let gm = engine.grid().gm;
                let padded = rows.div_ceil(gm) * gm;
                if padded > rows {
                    let k = engine.problem().input_cols();
                    bx.as_mut_slice()[rows * k..padded * k].fill(T::ZERO);
                }
                engine.execute_rows(bx, factors, by, padded)
            }
        }
    }

    /// Read access to the staged batch output (after [`Self::run_batch`]).
    pub(crate) fn batch_y(&self) -> &Matrix<T> {
        &self.batch.as_ref().expect("gather before scatter").1
    }

    /// Executes directly from/to the caller's buffers — the staging-free
    /// solo path. Local entries only; sharded solos go through the staged
    /// batch path (they may need row padding).
    pub(crate) fn run_rows(
        &mut self,
        x: &Matrix<T>,
        factors: &[&Matrix<T>],
        y: &mut Matrix<T>,
        rows: usize,
    ) -> Result<()> {
        match &mut self.compute {
            Compute::Local { workspace, .. } => workspace.execute_rows(x, factors, y, rows),
            Compute::Sharded(_) => unreachable!("sharded solos use the staged batch path"),
        }
    }

    /// Simulated-execution digest for `rows` of this entry's capacity,
    /// prorated from the engine's capacity-rows simulation. `None` on
    /// Local entries (no communication to attribute) and when the cost
    /// model cannot cover the per-GPU block shape.
    pub(crate) fn shard_summary(&self, rows: usize) -> Option<ExecSummary> {
        match &self.compute {
            Compute::Sharded(engine) => engine
                .summary()
                .map(|s| s.prorated(rows, engine.capacity())),
            Compute::Local { .. } => None,
        }
    }
}

/// Resolved backend state: `None` means single-node, `Some` carries the
/// grid and fabric model sharded entries are built against.
type BackendState = std::result::Result<Option<(GpuGrid, CommModel)>, KronError>;

/// Plan/workspace cache keyed by `(factor-shape chain, row capacity)`.
pub struct PlanCache<T: Element> {
    device: DeviceSpec,
    backend: BackendState,
    entries: HashMap<(u64, usize), CachedPlan<T>>,
}

impl<T: Element> PlanCache<T> {
    /// Creates an empty cache building entries for `backend` plans tuned
    /// against `device`. An invalid distributed configuration (e.g. a
    /// non-power-of-two GPU count) is captured here and surfaces as the
    /// documented [`KronError::InvalidGrid`] on every subsequent request.
    pub fn new(device: DeviceSpec, backend: &Backend) -> Self {
        let backend = match backend {
            Backend::SingleNode => Ok(None),
            Backend::Distributed { gpus, p2p } => GpuGrid::for_gpus(*gpus).map(|grid| {
                let comm = if *p2p {
                    CommModel::p2p(&device)
                } else {
                    CommModel::nccl(&device)
                };
                Some((grid, comm))
            }),
        };
        PlanCache {
            device,
            backend,
            entries: HashMap::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The structural identities of every cached entry.
    pub fn keys(&self) -> impl Iterator<Item = &PlanKey> {
        self.entries.values().map(|e| &e.key)
    }

    /// Evicts one entry (after a device failure, so the next batch of the
    /// shape rebuilds a fresh engine instead of trusting a possibly
    /// inconsistent fabric).
    pub(crate) fn evict(&mut self, shape_key: u64, capacity: usize) {
        self.entries.remove(&(shape_key, capacity));
    }

    /// Looks up (or plans, tunes, and allocates) the execution state for
    /// `model`'s shape chain at `capacity` rows, counting the hit or miss
    /// (and the local fallback when the grid cannot shard the model).
    pub(crate) fn get_or_create(
        &mut self,
        model: &ModelInner<T>,
        capacity: usize,
        stats: &StatsInner,
    ) -> Result<&mut CachedPlan<T>> {
        let device = &self.device;
        let backend = &self.backend;
        match self.entries.entry((model.shape_key, capacity)) {
            Entry::Occupied(e) => {
                let e = e.into_mut();
                if e.key.problem.factors == model.shapes {
                    stats.plan_hits.fetch_add(1, Ordering::Relaxed);
                    Ok(e)
                } else {
                    // 64-bit shape-hash collision: rebuild for the new
                    // chain rather than ever serving a wrong-shape state.
                    stats.plan_misses.fetch_add(1, Ordering::Relaxed);
                    *e = Self::build_entry(device, backend, model, capacity, stats)?;
                    Ok(e)
                }
            }
            Entry::Vacant(v) => {
                stats.plan_misses.fetch_add(1, Ordering::Relaxed);
                let entry = Self::build_entry(device, backend, model, capacity, stats)?;
                Ok(v.insert(entry))
            }
        }
    }

    fn build_entry(
        device: &DeviceSpec,
        backend: &BackendState,
        model: &ModelInner<T>,
        capacity: usize,
        stats: &StatsInner,
    ) -> Result<CachedPlan<T>> {
        match backend.as_ref().map_err(Clone::clone)? {
            Some((grid, comm)) => {
                // Round the capacity up so any row count ≤ capacity can
                // zero-pad to a GM multiple and shard.
                let cap = capacity.div_ceil(grid.gm) * grid.gm;
                let problem = KronProblem::new(cap, model.shapes.clone())?;
                match ShardedEngine::new(device, *grid, comm.clone(), &problem) {
                    Ok(engine) => Ok(CachedPlan {
                        key: PlanKey::sharded(problem, T::DTYPE, device.name, grid.gm, grid.gk),
                        compute: Compute::Sharded(Box::new(engine)),
                        batch: None,
                    }),
                    Err(KronError::InvalidGrid { .. }) => {
                        // The grid cannot shard this shape (mixed or
                        // rectangular factors, indivisible K): serve it
                        // locally rather than failing.
                        stats.local_fallbacks.fetch_add(1, Ordering::Relaxed);
                        Self::local_entry(device, model, capacity)
                    }
                    Err(other) => Err(other),
                }
            }
            None => Self::local_entry(device, model, capacity),
        }
    }

    fn local_entry(
        device: &DeviceSpec,
        model: &ModelInner<T>,
        capacity: usize,
    ) -> Result<CachedPlan<T>> {
        let problem = KronProblem::new(capacity, model.shapes.clone())?;
        let plan = FastKron::plan::<T>(&problem, device)?;
        let workspace = plan.workspace();
        let key = PlanKey::new(problem, T::DTYPE, device.name);
        Ok(CachedPlan {
            key,
            compute: Compute::Local {
                plan: Box::new(plan),
                workspace,
            },
            batch: None,
        })
    }
}
