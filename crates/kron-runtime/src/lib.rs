//! # kron-runtime
//!
//! A persistent serving runtime for Kron-Matmul: the layer the ROADMAP's
//! production north star needs between request traffic and the fused
//! execution path in `fastkron-core`.
//!
//! The paper's kernels shine at large `M`, but real serving traffic (GP
//! inference, graph kernels) arrives as many small-`M` requests — the
//! Table 3/4 shapes that underuse wide hosts. Following Jhurani &
//! Mullowney's observation that many small Kronecker problems should be
//! batched into one launch, this crate turns the small-`M` weakness into
//! the fused path's best case by stacking same-model requests row-wise
//! into one large-`M` execute.
//!
//! ## One runtime for mixed `f32`/`f64` traffic
//!
//! [`Runtime`] is **not generic**. Like FastKron's and Jhurani's C
//! interfaces — dtype-polymorphic handles over one engine — a single
//! runtime serves `f32` and `f64` models side by side: one pool of
//! scheduler lanes (one by default — see *Sharded admission* below),
//! lock-free admission rings (deadlines, aged priorities, and the
//! serve-sequence counter span both dtypes), and one bounded plan cache
//! whose keys and byte budget cover all traffic. Models, tickets, and
//! sessions stay fully typed ([`Model<f32>`], [`Session<f64>`], …); the
//! typed entry points wrap requests into a two-armed erased enum at the
//! channel and the scheduler unwraps them into typed per-dtype lanes —
//! enum dispatch only, no `Box<dyn>` on the hot path, and the
//! zero-allocation steady state is preserved (the counting-allocator
//! suite drives interleaved f32/f64 sessions). The scalar types the
//! runtime accepts are exactly the [`ServeElement`] impls (`f32`, `f64`;
//! the trait is sealed because the erased enum has one arm per dtype).
//!
//! ## Architecture
//!
//! ```text
//!  clients (typed)                 scheduler thread (erased)      compute (typed)
//!  ───────────────                ──────────────────────────      ───────────────
//!  submit(x: f32)──► [gate] ──► channel of ErasedRequest ─┬─► one PlanCache
//!  submit(x: f64)──►   │        {F32(..) | F64(..)}       │   (DType, shapes,
//!  Ticket / Session    │              │                   │    capacity) → plan
//!    ▲                 │       typed lanes: f32 | f64     │    + workspace
//!    │                 │       shed expired deadlines     │    + batch buffers
//!    │                 │       group per model, order by  │    (byte-accounted)
//!    │                 │       aged prio → deadline →     ▼
//!    │                 │       arrival (cross-dtype)   Workspace::execute_rows
//!    │                 ▼              │               ──► persistent worker pool
//!    │           gather rows into typed batch X          (rayon::ThreadPool)
//!    └──── slot.fill() ◄── scatter rows to per-request Y
//! ```
//!
//! * **Persistent worker pool** — compute runs on the process-wide
//!   [`rayon::ThreadPool`]: long-lived workers parked on a channel, one
//!   task handoff per row tile instead of a thread spawn per execute.
//!   A single unbatchable small-`M` request still uses every core via the
//!   exec layer's column-range splitting (wide mode).
//! * **Plan + workspace cache** — keyed by dtype, factor-shape chain, and
//!   row capacity (introspectable as [`kron_core::PlanKey`]s): after the
//!   first request of a shape, serving does **zero planning and zero
//!   allocation** per request — plans, ping-pong workspaces, batch
//!   buffers, and sharded engines are all reused (proved by
//!   counting-allocator tests), including across *different models that
//!   share a shape* (execution state depends on shapes only; factor
//!   values arrive with each execute).
//! * **Cross-request batcher** — each scheduler lane drains its request
//!   ring, groups same-model requests with `M ≤ batch_max_m`, stacks them
//!   row-wise into one batch execute (up to `max_batch_rows` rows), and
//!   scatters results back to each request's output. Batches are
//!   per-model and therefore per-dtype; the *order* batches are served in
//!   is global on the default single-lane layout, per lane when sharded.
//!
//! ## Sharded admission
//!
//! Admission is **lock-free and multi-producer-scalable**: every submit
//! pushes onto a bounded Vyukov-style MPMC ring (the vendored
//! `crossbeam::channel::bounded`) guarded by a striped atomic
//! sender-count gate — no mutex anywhere on the submit path, so N
//! submitter threads scale instead of convoying on one send lock (the
//! serve bench's multi-producer gate pins this).
//! [`RuntimeConfig::scheduler_lanes`]
//! (1–[`MAX_LANES`], default 1) shards the scheduler itself into
//! per-lane service threads:
//!
//! * **Hashed-by-plan placement** — a request's lane is a pure hash of
//!   its plan identity (dtype + factor-shape chain), so one model's
//!   whole batch window lands on one lane and a hot model cannot starve
//!   the rest of the fleet. [`Runtime::lane_for`] exposes the mapping.
//! * **Work-stealing** — an idle lane steals up to half of the deepest
//!   sibling ring before parking, so a skewed model mix still uses every
//!   lane; steals are counted ([`LaneStats::steals`]) and recorded as
//!   `Steal` events on the flight recorder.
//! * **Per-lane bypass eligibility** — the inline bypass lane's idle
//!   check is a per-lane CAS claim on that lane's
//!   [`LaneStats::inflight`] gauge (not a global load), so two
//!   concurrent submitters can never both observe "idle" and race into
//!   the inline lane; the loser falls back to its scheduler ring.
//! * **Striped shutdown** — each lane keeps the "Shutdown is the last
//!   message" guarantee through its own atomic gate: close marks the
//!   gate, waits for in-flight senders to drain, then sends the final
//!   `Shutdown` — and a scheduler panic closes every gate so later
//!   submits fail fast with [`kron_core::KronError::Shutdown`].
//! * **Per-lane observability** — [`RuntimeStats::lane_stats`]
//!   ([`RuntimeStats::lanes`] for the live prefix) carries each lane's
//!   depth, inflight, served/batched/solo/bypassed/error counters, and
//!   steals; `served == batched + solo + bypassed + error_replies`
//!   holds per lane as well as globally, and `metrics_snapshot()`
//!   exports the same per-lane series to JSON and Prometheus.
//!
//! The default stays one lane: single-lane deployments keep the classic
//! global service order (and its deterministic manual-clock tests)
//! while multi-lane deployments trade global ordering for parallel
//! drain, per-lane windows, and stealing.
//!
//! ## Backends
//!
//! Where a batch executes is a [`Backend`] choice in [`RuntimeConfig`]:
//!
//! * [`Backend::SingleNode`] (default) — the fused-path
//!   [`fastkron_core::Workspace`] on one device, as above.
//! * [`Backend::Distributed`] — the stacked batch shards across a
//!   simulated multi-GPU machine ([`kron_dist::ShardedEngine`]): rows
//!   split `GM`-ways, columns `GK`-ways over a SUMMA-style grid, with
//!   Algorithm 2's grouped exchanges (§5, Figure 11 of the paper) between
//!   factor groups. The scheduler zero-pads each batch to a `GM` multiple,
//!   so any request mix shards; results scatter back per request together
//!   with each request's prorated share of the simulated execution
//!   ([`Ticket::wait_with_stats`], [`Session::last_shard_summary`],
//!   `comm_bytes` in [`RuntimeStats`]). Models the grid cannot shard
//!   (mixed or rectangular factors, indivisible `K`) transparently fall
//!   back to single-node execution; an impossible grid (non-power-of-two
//!   GPU count) fails every request with the documented
//!   [`kron_core::KronError::InvalidGrid`]. A device that panics
//!   mid-batch fails only that batch with
//!   [`kron_core::KronError::DeviceFailure`] — the fabric stays balanced,
//!   later batches re-plan on a fresh engine.
//!
//! Both backends run the same microkernel
//! ([`fastkron_core::sliced_multiply_rows_into`]), so on integer-valued
//! data every execution path agrees bit-for-bit — the invariant the
//! workspace-wide `kron-testkit` differential harness pins, including
//! across mixed-dtype traces through one runtime.
//!
//! ## Lifecycle and admission control
//!
//! Long-lived many-model deployments get these levers on top of the
//! serving core, all measured on an injectable [`Clock`] (real in
//! production, manually advanced in tests — which is what makes the
//! scheduler's timing behavior deterministically testable):
//!
//! * **Bounded plan cache** — [`CachePolicy`] caps resident entries
//!   (LRU), their **byte footprint** (`max_bytes`, accounted per entry at
//!   [`kron_core::PlanKey::estimated_bytes`]: workspace + staging +
//!   engine blocks — eviction runs until the incoming entry fits *before*
//!   it builds, and an entry larger than the whole budget fails with
//!   [`kron_core::KronError::CacheBudgetExceeded`]), and ages idle ones
//!   out (`max_idle_us`, swept each scheduler cycle and via
//!   [`Runtime::sweep`]). All three bounds span both dtypes. Evicting a
//!   `Distributed` entry joins its `GM·GK` simulated-device threads
//!   synchronously. In-flight batches pin their entry, and
//!   [`Runtime::pin_model`] gives clients the same RAII pin to keep a hot
//!   model resident; [`RuntimeStats`] counts `evictions`/`rebuilds` and
//!   gauges `cached_entries`/`cached_bytes`.
//! * **Per-request admission control** — [`SubmitOptions`] carries a
//!   `priority` and an absolute `deadline_us` on the runtime's clock
//!   ([`Runtime::now_us`]); a request whose deadline passed before the
//!   scheduler picked it up is shed with
//!   [`kron_core::KronError::DeadlineExceeded`] before any plan lookup or
//!   execute. Within a window, service order is **aged priority first**
//!   ([`aged_priority`]: queue age raises effective priority at one step
//!   per [`RuntimeConfig::priority_aging_us`], so strict ordering cannot
//!   starve), then **tightest deadline**, then arrival.
//!   [`Runtime::submit_linked_with`] applies one deadline to a whole
//!   linked group atomically.
//! * **Adaptive linger** — `batch_linger_us` is a cap: the effective
//!   window ([`adaptive_linger_us`]) collapses to zero under sequential
//!   traffic and grows to the cap as the smoothed queue depth rises,
//!   visible as the [`RuntimeStats::current_linger_us`] gauge.
//!
//! ## Low-latency lane
//!
//! Batching is a throughput device, and at queue depth 1 it is pure
//! tax: a lone request pays the channel hop, the scheduler wake, and the
//! linger window for a batch that never forms. The runtime therefore
//! keeps an **inline bypass lane** ([`RuntimeConfig::inline_bypass`], on
//! by default): when nothing is in flight (the
//! [`RuntimeStats::inflight_requests`] gauge is zero) and the model's
//! plan is warm in the cache at full device width, [`Runtime::submit`]
//! and [`Session::call`] execute the request *on the submitting thread*
//! against the pinned cached plan — no channel, no wake, no linger. The
//! moment load appears (a non-empty queue, a cold plan, a sharded or
//! mid-retry distributed entry, a closed gate), submission falls back to
//! the batching scheduler, so bursts still coalesce and the retry /
//! breaker / watchdog ladder keeps ownership of every distributed
//! execute.
//!
//! The lane is a scheduling shortcut, not a semantic one: bypassed and
//! scheduled serves run the same microkernel on the same cached
//! workspace and agree bit-for-bit; deadlines shed identically (an
//! already-expired [`SubmitOptions::deadline_us`] sheds inline with
//! [`kron_core::KronError::DeadlineExceeded`] before any plan lookup);
//! and the steady state stays allocation-free. Observability keeps the
//! lanes distinguishable: bypassed serves count in
//! [`RuntimeStats::bypassed_requests`] (`served == batched + solo +
//! bypassed + error_replies`), land in the `bypass` [`Outcome`]
//! histogram, stamp receipts with `queue_us == 0` and `linger_us == 0`,
//! and leave a `Bypass` event on the flight recorder. The serve bench's
//! queue-depth-1 gate holds the lane within ~2x of the raw fused call —
//! against the ~1000x the full batching round-trip costs a lone request.
//!
//! ## Self-healing
//!
//! Device faults are a *runtime* concern, not a client concern. Three
//! cooperating mechanisms (all deterministic under a manual clock) keep
//! transient failures invisible and persistent ones bounded:
//!
//! * **Transparent retry with degraded re-sharding** —
//!   [`RetryPolicy`] (on by default): a batch that fails with
//!   [`kron_core::KronError::DeviceFailure`] or
//!   [`kron_core::KronError::DeviceTimeout`] evicts its broken engine and
//!   re-executes on a rebuilt grid; if the fault persists, later attempts
//!   halve the device count (`4 → 2 → 1`) down to the single-device
//!   fallback, so a sick machine serves slower instead of failing. The
//!   client sees `Ok` with bit-identical results (every backend shares
//!   one microkernel); [`ServeReceipt::attempts`] / [`ServeReceipt::grid`]
//!   and the [`RuntimeStats`] counters (`retries`, `degraded_batches`,
//!   `recovered_requests`) record what really happened. Retries honor
//!   deadlines — a request whose deadline a retry would overshoot is shed
//!   with [`kron_core::KronError::DeadlineExceeded`], never served late.
//! * **Device health + circuit breakers** — every device fault is
//!   attributed to its device; [`BreakerPolicy::trip_after`] consecutive
//!   failures trip that device's breaker ([`BreakerState`]: Closed →
//!   Open → HalfOpen), quarantining its grid — new plans build on the
//!   largest clean power-of-two device prefix, so traffic routes around
//!   the sick device with no retry at all until the cooldown's half-open
//!   probe succeeds. Observable via [`Runtime::device_health`] and the
//!   `breaker_trips` counter.
//! * **Engine watchdog** — a device that *hangs* (rather than fails) is
//!   bounded by [`RuntimeConfig::device_watchdog_us`]: the sharded
//!   engine's coordinator converts the stall into
//!   [`kron_core::KronError::DeviceTimeout`], which then feeds the same
//!   retry/breaker machinery.
//! * **Scheduler panic containment** — the scheduler loop runs under
//!   `catch_unwind`; a panic poisons the runtime: every pending
//!   [`Ticket::wait`] fails with [`kron_core::KronError::Shutdown`] and
//!   later submits error instead of hanging on a dead thread.
//!
//! Faults are injected deterministically through the **chaos plane**:
//!   [`Runtime::install_fault_plan`] scripts [`FaultPlan`]s of device
//!   panics, watchdog-bounded stalls, and scheduler panics, triggered on
//!   the Nth sharded batch or at a clock time ([`FaultTrigger`]), with
//!   [`Runtime::pending_fault_events`] to assert a drill ran.
//!
//! ## Usage
//!
//! ```
//! use kron_core::Matrix;
//! use kron_runtime::Runtime;
//!
//! // One runtime, models of both dtypes.
//! let runtime = Runtime::with_defaults();
//! let f32_factors: Vec<Matrix<f32>> = (0..2).map(|_| Matrix::identity(4)).collect();
//! let f64_factors: Vec<Matrix<f64>> = (0..2).map(|_| Matrix::identity(3)).collect();
//! let m32 = runtime.load_model(f32_factors).unwrap();
//! let m64 = runtime.load_model(f64_factors).unwrap();
//!
//! // Asynchronous: submit returns a typed ticket; mixed-dtype requests
//! // interleave through the same scheduler.
//! let x32 = Matrix::<f32>::from_fn(2, 16, |r, c| (r + c) as f32);
//! let x64 = Matrix::<f64>::from_fn(2, 9, |r, c| (r * 2 + c) as f64);
//! let t32 = runtime.submit(&m32, x32.clone()).unwrap();
//! let t64 = runtime.submit(&m64, x64.clone()).unwrap();
//! assert_eq!(t32.wait().unwrap(), x32); // identity factors ⇒ identity map
//! assert_eq!(t64.wait().unwrap(), x64);
//!
//! // Synchronous convenience.
//! let y = runtime.execute(&m32, x32.clone()).unwrap();
//! assert_eq!(y, x32);
//! let stats = runtime.stats();
//! assert_eq!(stats.requests_f32 + stats.requests_f64, 3);
//! ```
//!
//! For allocation-free steady-state serving, hold a typed [`Session`] per
//! dtype and recycle its buffers: [`Session::call`] moves `x`/`y` in and
//! returns them filled.
//!
//! ## Observability
//!
//! The runtime measures itself continuously, at zero steady-state
//! allocation cost (the counting-allocator suite proves serving with
//! every instrument armed allocates nothing):
//!
//! * **Stage timelines** — every request is clock-stamped through the
//!   pipeline; the [`ServeReceipt`] from [`Ticket::wait_with_receipt`]
//!   carries a [`StageTimings`] breakdown (queue, linger, plan, exec,
//!   scatter, retry — microseconds on the runtime's [`Clock`], so
//!   manual-clock tests can assert exact timelines).
//! * **Latency histograms** — preallocated atomic log2 histograms per
//!   stage and per outcome, with rank-interpolated
//!   [`HistogramSnapshot::percentile`] readout; aggregated globally, per plan key in a bounded model
//!   registry ([`Runtime::model_stats`], [`ModelStats`]), and per device
//!   ([`Runtime::device_health`] reports carry a
//!   [`DeviceMetricsSnapshot`]).
//! * **Flight recorder** — a fixed-capacity lock-free ring of recent
//!   [`ServeEvent`]s (admissions, sheds, batch formation, executes,
//!   faults, retries, degrades, breaker transitions, evictions), drained
//!   in causal order via [`Runtime::drain_events`] — chaos drills and
//!   test failures produce a post-mortem trace, not just counters.
//! * **Snapshot/export** — [`Runtime::metrics_snapshot`] folds counters,
//!   histograms, registries, and device health into one
//!   [`MetricsSnapshot`] that renders to stable JSON
//!   ([`MetricsSnapshot::to_json`]) or Prometheus text
//!   ([`MetricsSnapshot::to_prometheus`]); the serve bench records its
//!   p50/p95/p99 tails from these histograms.
//!
//! See `examples/serving_observability.rs` for a chaos drill that prints
//! the snapshot and the drained event trace.
//!
//! ## Correctness tooling
//!
//! The lock-free admission core (the [`LaneGate`][^gate] sender-count
//! gate, the bypass lane's CAS claim, the flight recorder's seqlock, and
//! the `crossbeam` shim's ring queue and sleeper handshake underneath)
//! is guarded by two static layers on top of the runtime test suites:
//!
//! * **Deterministic model checking** — the hot-path atomics, fences,
//!   and cells are imported through the `crossbeam::sync` facade, which
//!   re-exports `std` normally and the vendored `kron-modelcheck`
//!   explorer under `RUSTFLAGS="--cfg kron_loom"`. The suites in
//!   `src/modelcheck_tests.rs` (and `crossbeam`'s `tests/modelcheck.rs`)
//!   then drive the *production* protocol code through every thread
//!   interleaving within a preemption bound — proving gate close vs.
//!   send linearizes, the bypass claim is mutually exclusive, seqlock
//!   drains never tear, and the sleeper handshake never loses a wakeup:
//!
//!   ```sh
//!   RUSTFLAGS="--cfg kron_loom" cargo test -p kron-runtime --lib modelcheck_tests
//!   RUSTFLAGS="--cfg kron_loom" cargo test -p crossbeam --test modelcheck
//!   ```
//!
//!   Mutation-validation tests re-introduce historical bug shapes (the
//!   check-then-claim bypass race, a dropped handshake fence, a skipped
//!   seqlock re-check) and assert the checker still flags them.
//! * **Source-level linting** — `cargo xtask analyze` (CI, exit 1)
//!   enforces `// SAFETY:` comments on every `unsafe`, bans panics on
//!   the scheduler/submit hot path, bans allocation inside the
//!   zero-alloc-gated functions, and requires a `// relaxed:`
//!   justification on every `Ordering::Relaxed` touching a protocol
//!   atomic. Exceptions live in `crates/xtask/analyze-allowlist.txt`
//!   with mandatory reasons.
//!
//! New synchronization code on the admission path is expected to arrive
//! with a model-check suite alongside it (see the ROADMAP invariant).
//!
//! [^gate]: `LaneGate` is crate-internal; see `src/runtime.rs`.

#![deny(missing_docs)]

mod cache;
mod clock;
mod fault;
mod health;
mod metrics;
mod runtime;
mod scheduler;
mod trace;

// Model-check suites for the admission protocols (LaneGate, the bypass
// CAS claim, the flight-recorder seqlock). Compiled only under
// `RUSTFLAGS="--cfg kron_loom"`, where the `crossbeam::sync` facade
// resolves to `kron-modelcheck`; run them by name filter — the other
// unit tests are not model-aware:
//
// ```sh
// RUSTFLAGS="--cfg kron_loom" cargo test -p kron-runtime --lib modelcheck_tests
// ```
#[cfg(all(test, kron_loom))]
mod modelcheck_tests;

pub use cache::{CachePolicy, PlanCache};
pub use clock::{Clock, ManualClock};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultTrigger};
pub use health::{BreakerPolicy, BreakerState, DeviceHealthReport};
pub use metrics::{
    DeviceMetricsSnapshot, HistogramSnapshot, MetricsSnapshot, ModelStats, Outcome, Stage,
};
pub use runtime::{
    Backend, LaneStats, Model, ModelPin, RetryPolicy, Runtime, RuntimeConfig, RuntimeStats,
    ServeElement, ServeReceipt, Session, SubmitOptions, Ticket, MAX_LANES,
};
pub use scheduler::{adaptive_linger_us, aged_priority};
pub use trace::{EvictReason, ServeEvent, ServeEventKind, StageTimings};
