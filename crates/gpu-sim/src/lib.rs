//! # gpu-sim
//!
//! A trace-driven GPU performance model standing in for the NVIDIA Tesla
//! V100 hardware the paper evaluates on (see DESIGN.md §1 for the
//! substitution argument).
//!
//! The model has three layers:
//!
//! 1. **Device description** ([`device::DeviceSpec`]) — SM count, warp size,
//!    shared-memory banks, register file, peak FLOPS per data type, DRAM
//!    bandwidth, NVLink bandwidth. Presets for V100 (the paper's GPU) and
//!    A100 are provided.
//! 2. **Access accounting** ([`trace::Tracer`]) — kernels report each warp's
//!    shared-memory and global-memory accesses; the tracer converts them to
//!    transactions using the hardware rules (bank-conflict replays for
//!    shared memory, 32-byte sector coalescing for global memory). This is
//!    what reproduces Table 2 of the paper.
//! 3. **Timing** ([`cost::CostModel`]) — a roofline over compute, DRAM and
//!    shared-memory throughput, scaled by occupancy and wave quantization,
//!    plus analytic models for the baseline building blocks the paper's
//!    rivals use: cuBLAS skinny GEMM ([`models::CublasModel`]) and the
//!    3-D inner transpose ([`models::TransposeModel`]).
//!
//! Nothing in this crate computes numerical results; it only counts and
//! times. Functional execution lives with each engine.

#![deny(missing_docs)]

pub mod cost;
pub mod device;
pub mod models;
pub mod stats;
pub mod trace;

pub use cost::{CostModel, LaunchConfig};
pub use device::{DeviceSpec, A100, V100};
pub use stats::{ExecReport, ExecSummary, KernelStats, StepTiming};
pub use trace::Tracer;
