//! Warp-level memory-access accounting.
//!
//! Kernels report, for each executed shared-memory or global-memory
//! instruction, the set of addresses the warp's active lanes touch. The
//! tracer converts these into hardware transaction counts:
//!
//! * **Shared memory**: the warp's word addresses are grouped by bank
//!   (`word % banks`). A bank serving `k` *distinct* words forces `k`
//!   serialized transactions (replays); lanes reading the *same* word are
//!   broadcast in one transaction. The instruction therefore costs
//!   `max over banks of distinct-words-in-bank` transactions — exactly the
//!   replay rule the paper's §4.1 reasons about.
//! * **Global memory**: addresses are grouped into 32-byte sectors; each
//!   distinct sector is one DRAM transaction. A fully coalesced warp of
//!   32 f32 lanes touches 4 sectors; a stride-32 pattern touches 32.
//!
//! Elements wider than one bank word (f64) are modelled as two word
//! accesses per lane, matching how Volta services 64-bit shared loads in
//! two 32-bit phases.

use crate::device::DeviceSpec;
use crate::stats::KernelStats;

/// Which direction an access moves data (selects the load or store counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Memory → registers.
    Load,
    /// Registers → memory.
    Store,
}

/// Accumulates transaction counts for one kernel launch.
#[derive(Debug, Clone)]
pub struct Tracer {
    /// Counters being built up.
    pub stats: KernelStats,
    banks: usize,
    bank_width: usize,
    warp_size: usize,
    sector_bytes: usize,
    /// Scratch: distinct words per bank for the current instruction.
    scratch_words: Vec<Vec<usize>>,
}

impl Tracer {
    /// Creates a tracer for the given device.
    pub fn new(device: &DeviceSpec) -> Self {
        Tracer {
            stats: KernelStats::default(),
            banks: device.shared_banks,
            bank_width: device.bank_width_bytes,
            warp_size: device.warp_size,
            sector_bytes: device.dram_sector_bytes,
            scratch_words: vec![Vec::new(); device.shared_banks],
        }
    }

    /// Warp size the tracer groups lanes by.
    pub fn warp_size(&self) -> usize {
        self.warp_size
    }

    /// Records `n` floating-point operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.stats.flops += n;
    }

    /// Records one `__syncthreads()`.
    #[inline]
    pub fn barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// Records one shared-memory instruction executed by a warp.
    ///
    /// `byte_addrs` holds the shared-memory *byte* address touched by each
    /// active lane; `elem_bytes` is the element width (4 or 8). Returns the
    /// number of transactions charged.
    pub fn shared_access(&mut self, dir: Dir, byte_addrs: &[usize], elem_bytes: usize) -> u64 {
        if byte_addrs.is_empty() {
            return 0;
        }
        debug_assert!(byte_addrs.len() <= self.warp_size);
        let words_per_elem = elem_bytes.div_ceil(self.bank_width);

        for b in &mut self.scratch_words {
            b.clear();
        }
        for &addr in byte_addrs {
            let word0 = addr / self.bank_width;
            for w in word0..word0 + words_per_elem {
                let bank = w % self.banks;
                if !self.scratch_words[bank].contains(&w) {
                    self.scratch_words[bank].push(w);
                }
            }
        }
        let transactions = self
            .scratch_words
            .iter()
            .map(|v| v.len())
            .max()
            .unwrap_or(0) as u64;
        // A conflict-free warp instruction needs one transaction per
        // 32-bit phase (two for f64).
        let ideal = words_per_elem as u64;
        match dir {
            Dir::Load => {
                self.stats.smem_load_transactions += transactions;
                self.stats.smem_load_ideal += ideal;
            }
            Dir::Store => {
                self.stats.smem_store_transactions += transactions;
                self.stats.smem_store_ideal += ideal;
            }
        }
        transactions
    }

    /// Records one global-memory instruction executed by a warp.
    ///
    /// `byte_addrs` holds the global byte address per active lane. Returns
    /// the number of 32-byte sectors charged.
    pub fn global_access(&mut self, dir: Dir, byte_addrs: &[usize], elem_bytes: usize) -> u64 {
        if byte_addrs.is_empty() {
            return 0;
        }
        let mut sectors: Vec<usize> = Vec::with_capacity(byte_addrs.len() * 2);
        for &addr in byte_addrs {
            let first = addr / self.sector_bytes;
            let last = (addr + elem_bytes - 1) / self.sector_bytes;
            for s in first..=last {
                if !sectors.contains(&s) {
                    sectors.push(s);
                }
            }
        }
        let n = sectors.len() as u64;
        self.stats.gmem_useful_bytes += (byte_addrs.len() * elem_bytes) as u64;
        match dir {
            Dir::Load => self.stats.gmem_load_sectors += n,
            Dir::Store => self.stats.gmem_store_sectors += n,
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::V100;

    fn tracer() -> Tracer {
        Tracer::new(&V100)
    }

    #[test]
    fn shared_conflict_free_is_one_transaction() {
        let mut t = tracer();
        // 32 lanes touching consecutive f32 words: banks 0..31, one each.
        let addrs: Vec<usize> = (0..32).map(|l| l * 4).collect();
        assert_eq!(t.shared_access(Dir::Load, &addrs, 4), 1);
        assert_eq!(t.stats.smem_load_transactions, 1);
        assert_eq!(t.stats.bank_conflict_factor(), 1.0);
    }

    #[test]
    fn shared_same_word_broadcasts() {
        let mut t = tracer();
        let addrs = vec![64usize; 32]; // every lane reads the same word
        assert_eq!(t.shared_access(Dir::Load, &addrs, 4), 1);
    }

    #[test]
    fn shared_stride_bank_conflicts() {
        // Stride of 32 words: every lane hits bank 0 with a distinct word
        // → 32-way conflict, 32 transactions. This is the paper's §4.1
        // direct-caching pathology ("every P element lies in the same bank").
        let mut t = tracer();
        let addrs: Vec<usize> = (0..32).map(|l| l * 32 * 4).collect();
        assert_eq!(t.shared_access(Dir::Load, &addrs, 4), 32);
        assert_eq!(t.stats.bank_conflict_factor(), 32.0);
    }

    #[test]
    fn shared_two_way_conflict() {
        // Stride of 2 words: lanes l and l+16 hit the same bank with
        // distinct words → 2 transactions.
        let mut t = tracer();
        let addrs: Vec<usize> = (0..32).map(|l| l * 2 * 4).collect();
        assert_eq!(t.shared_access(Dir::Load, &addrs, 4), 2);
    }

    #[test]
    fn shared_sixteen_way_conflict() {
        // Stride of 16 words: banks 0 and 16 each serve 16 distinct words.
        let mut t = tracer();
        let addrs: Vec<usize> = (0..32).map(|l| l * 16 * 4).collect();
        assert_eq!(t.shared_access(Dir::Load, &addrs, 4), 16);
    }

    #[test]
    fn shared_f64_costs_two_phases_min() {
        let mut t = tracer();
        // 32 consecutive f64: words 0..64 → each bank holds 2 distinct
        // words → 2 transactions, which equals the ideal for 64-bit.
        let addrs: Vec<usize> = (0..32).map(|l| l * 8).collect();
        assert_eq!(t.shared_access(Dir::Load, &addrs, 8), 2);
        assert_eq!(t.stats.bank_conflict_factor(), 1.0);
    }

    #[test]
    fn shared_partial_warp() {
        let mut t = tracer();
        let addrs: Vec<usize> = (0..7).map(|l| l * 4).collect();
        assert_eq!(t.shared_access(Dir::Load, &addrs, 4), 1);
        assert_eq!(t.shared_access(Dir::Load, &[], 4), 0);
    }

    #[test]
    fn global_coalesced_f32() {
        let mut t = tracer();
        // 32 consecutive f32 = 128 aligned bytes = 4 sectors.
        let addrs: Vec<usize> = (0..32).map(|l| 256 + l * 4).collect();
        assert_eq!(t.global_access(Dir::Load, &addrs, 4), 4);
        assert_eq!(t.stats.gmem_useful_bytes, 128);
    }

    #[test]
    fn global_strided_worst_case() {
        let mut t = tracer();
        // Stride 128 B: one sector per lane.
        let addrs: Vec<usize> = (0..32).map(|l| l * 128).collect();
        assert_eq!(t.global_access(Dir::Store, &addrs, 4), 32);
    }

    #[test]
    fn global_straddling_element() {
        let mut t = tracer();
        // An 8-byte element at offset 28 straddles two sectors.
        assert_eq!(t.global_access(Dir::Load, &[28], 8), 2);
    }

    #[test]
    fn global_duplicate_sectors_counted_once() {
        let mut t = tracer();
        let addrs = vec![0usize, 4, 8, 12, 16, 20, 24, 28];
        assert_eq!(t.global_access(Dir::Load, &addrs, 4), 1);
    }

    #[test]
    fn flops_and_barriers_accumulate() {
        let mut t = tracer();
        t.flops(128);
        t.flops(2);
        t.barrier();
        assert_eq!(t.stats.flops, 130);
        assert_eq!(t.stats.barriers, 1);
    }
}
