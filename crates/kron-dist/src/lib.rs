//! # kron-dist
//!
//! Distributed Kron-Matmul on a simulated multi-GPU machine (§5 of the
//! paper).
//!
//! * [`fabric`] — the machine model: a SUMMA-style `{GM, GK}` grid of
//!   simulated GPUs, point-to-point messaging over OS threads and
//!   crossbeam channels (standing in for NCCL over NVLink 2), and an α–β
//!   communication-time model.
//! * [`fastkron`] — Algorithm 2: each GPU performs
//!   `Nlocal = ⌊log_P TGK⌋` *local* sliced multiplications before one
//!   all-to-all relocation round (`StoreGPUTile`), cutting communication
//!   volume by `Nlocal` versus per-iteration exchanges. Functionally
//!   executable (threads) and analytically timeable.
//! * [`engine`] — [`ShardedEngine`], the serving-grade form of Algorithm 2:
//!   persistent simulated-device threads, caller-owned batch buffers, and
//!   recycled exchange buffers, so a warmed engine executes with **zero
//!   allocations** and a faulted device fails its batch cleanly instead of
//!   hanging the fabric. Built via [`DistFastKron::workspace`]; this is
//!   what `kron-runtime`'s `Distributed` backend serves through.
//! * [`baselines`] — the two rival distributed systems of §6.3: CTF
//!   (distributed shuffle: GEMM + distributed transpose every iteration)
//!   and DISTAL (distributed FTMMT: fused contraction, but still one
//!   exchange per iteration).

#![deny(missing_docs)]

pub mod baselines;
pub mod engine;
pub mod fabric;
pub mod fastkron;

pub use baselines::{CtfEngine, DistalEngine};
pub use engine::{live_sim_worker_threads, ShardedEngine, Watchdog};
pub use fabric::{CommModel, GpuGrid};
pub use fastkron::DistFastKron;
