//! The shuffle algorithm (Davio 1981), as implemented by GPyTorch and
//! PyKronecker: per factor, `reshape → GEMM → transpose-inner → reshape`.
//!
//! This is the functional reference for the shuffle-algorithm baselines;
//! the GPU-time model for it lives in `kron-baselines`.

use crate::element::Element;
use crate::error::{KronError, Result};
use crate::gemm::gemm;
use crate::matrix::Matrix;

/// Computes `Y = X · (F1 ⊗ … ⊗ FN)` with the shuffle algorithm.
///
/// Iterates factors from last to first. For factor `F` of shape `P×Q` and
/// intermediate of `K` columns:
///
/// 1. reshape `M×K` to `(M·K/P)×P` (groups of `P` consecutive elements —
///    factor `F`'s index is the fastest-varying dimension at its turn);
/// 2. GEMM with `F` to get `(M·K/P)×Q`;
/// 3. reshape to `M×(K/P)×Q`, transpose the two inner dims, flatten to
///    `M×(Q·K/P)` — this moves the fresh `q` index to the slowest position,
///    exactly the memory shuffle FastKron's algorithm eliminates.
///
/// # Errors
/// Shape errors if `X.cols() != ∏Pᵢ` or `factors` is empty.
pub fn kron_matmul_shuffle<T: Element>(x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
    if factors.is_empty() {
        return Err(KronError::NoFactors);
    }
    let expected_cols: usize = factors.iter().map(|f| f.rows()).product();
    if x.cols() != expected_cols {
        return Err(KronError::ShapeMismatch {
            expected: format!("X with ∏Pᵢ = {expected_cols} cols"),
            found: format!("X with {} cols", x.cols()),
        });
    }

    let m = x.rows();
    let mut y = x.clone();
    for f in factors.iter().rev() {
        let (p, q) = (f.rows(), f.cols());
        let k = y.cols();
        debug_assert_eq!(k % p, 0, "intermediate cols must be divisible by P");
        let slices = k / p;
        // (a) reshape to (M·K/P) × P and multiply.
        let tall = y.reshape(m * slices, p)?;
        let multiplied = gemm(&tall, f)?;
        // (b) + (c) reshape to M×(K/P)×Q, swap inner dims, flatten.
        let grouped = multiplied.reshape(m, slices * q)?;
        y = grouped.transpose_inner(slices, q)?;
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_matrices_close;
    use crate::naive::kron_matmul_naive;

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + r * cols + c) % 13) as f64 - 6.0
        })
    }

    #[test]
    fn matches_naive_two_square_factors() {
        let x = seq_matrix(2, 4, 1);
        let f1 = seq_matrix(2, 2, 3);
        let f2 = seq_matrix(2, 2, 7);
        let y = kron_matmul_shuffle(&x, &[&f1, &f2]).unwrap();
        let oracle = kron_matmul_naive(&x, &[&f1, &f2]).unwrap();
        assert_matrices_close(&y, &oracle, "shuffle vs naive 2×(2×2)");
    }

    #[test]
    fn matches_naive_three_factors() {
        let x = seq_matrix(3, 27, 2);
        let f = seq_matrix(3, 3, 5);
        let g = seq_matrix(3, 3, 9);
        let h = seq_matrix(3, 3, 11);
        let y = kron_matmul_shuffle(&x, &[&f, &g, &h]).unwrap();
        let oracle = kron_matmul_naive(&x, &[&f, &g, &h]).unwrap();
        assert_matrices_close(&y, &oracle, "shuffle vs naive 3×(3×3)");
    }

    #[test]
    fn matches_naive_rectangular_factors() {
        // Expanding and contracting factors exercise the intermediate
        // sizing logic: 2×3 ⊗ 4×2 (X: M×8 → Y: M×6).
        let x = seq_matrix(5, 8, 0);
        let f1 = seq_matrix(2, 3, 1);
        let f2 = seq_matrix(4, 2, 2);
        let y = kron_matmul_shuffle(&x, &[&f1, &f2]).unwrap();
        let oracle = kron_matmul_naive(&x, &[&f1, &f2]).unwrap();
        assert_eq!(y.cols(), 6);
        assert_matrices_close(&y, &oracle, "shuffle vs naive rect");
    }

    #[test]
    fn matches_naive_mixed_shapes_from_table4() {
        // Table 4 row 20-style mixed chain: 5×5 ⊗ 2×2 ⊗ 5×5.
        let x = seq_matrix(1, 50, 3);
        let a = seq_matrix(5, 5, 1);
        let b = seq_matrix(2, 2, 4);
        let c = seq_matrix(5, 5, 8);
        let y = kron_matmul_shuffle(&x, &[&a, &b, &c]).unwrap();
        let oracle = kron_matmul_naive(&x, &[&a, &b, &c]).unwrap();
        assert_matrices_close(&y, &oracle, "shuffle vs naive 5×2×5");
    }

    #[test]
    fn single_factor() {
        let x = seq_matrix(4, 6, 0);
        let f = seq_matrix(6, 3, 2);
        let y = kron_matmul_shuffle(&x, &[&f]).unwrap();
        let oracle = kron_matmul_naive(&x, &[&f]).unwrap();
        assert_matrices_close(&y, &oracle, "shuffle single factor");
    }

    #[test]
    fn rejects_bad_input() {
        let x = Matrix::<f64>::zeros(2, 5);
        let f = Matrix::<f64>::identity(2);
        assert!(kron_matmul_shuffle(&x, &[&f]).is_err());
        assert!(kron_matmul_shuffle::<f64>(&x, &[]).is_err());
    }
}
