//! Criterion wall-clock benches of the functional engines (CPU):
//! FastKron's sliced multiply vs shuffle vs FTMMT vs naive on moderate
//! sizes. These measure this library's real compute paths, complementing
//! the simulated-GPU figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastkron_core::algorithm::kron_matmul_fastkron;
use kron_core::ftmmt::kron_matmul_ftmmt;
use kron_core::naive::kron_matmul_naive;
use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::Matrix;
use std::hint::black_box;

fn inputs(m: usize, p: usize, n: usize) -> (Matrix<f32>, Vec<Matrix<f32>>) {
    let k = p.pow(n as u32);
    let x = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 17) as f32 - 8.0);
    let fs = (0..n)
        .map(|i| Matrix::from_fn(p, p, |r, c| ((i * 5 + r * p + c) % 13) as f32 - 6.0))
        .collect();
    (x, fs)
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("kron_matmul_functional");
    group.sample_size(10);
    for &(m, p, n) in &[(64usize, 8usize, 4usize), (16, 16, 3), (256, 4, 5)] {
        let (x, fs) = inputs(m, p, n);
        let refs: Vec<&Matrix<f32>> = fs.iter().collect();
        let label = format!("M{m}_P{p}_N{n}");
        group.bench_with_input(BenchmarkId::new("fastkron", &label), &(), |b, ()| {
            b.iter(|| kron_matmul_fastkron(black_box(&x), black_box(&refs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("shuffle", &label), &(), |b, ()| {
            b.iter(|| kron_matmul_shuffle(black_box(&x), black_box(&refs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ftmmt", &label), &(), |b, ()| {
            b.iter(|| kron_matmul_ftmmt(black_box(&x), black_box(&refs)).unwrap())
        });
    }
    // The naive engine only at a tiny size (it is O(M*K*Q)).
    let (x, fs) = inputs(8, 4, 3);
    let refs: Vec<&Matrix<f32>> = fs.iter().collect();
    group.bench_function("naive/M8_P4_N3", |b| {
        b.iter(|| kron_matmul_naive(black_box(&x), black_box(&refs)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
