//! Table 2: shared-memory load/store transactions of COGENT vs FastKron
//! (M = 1024, float), in units of 1e7 transactions, with reduction
//! factors.

use bench::table1_cases;
use gpu_sim::device::V100;
use kron_baselines::{Engine, FastKronEngine, FtmmtEngine};
use kron_core::KronProblem;

fn main() {
    println!("Table 2 — shared-memory transactions (x1e7): COGENT vs FastKron (M=1024, float)");
    println!(
        "{:>3} {:>3} | {:>10} {:>10} | {:>10} {:>10} | {:>8} {:>8}",
        "P", "N", "CO-loads", "CO-stores", "FK-loads", "FK-stores", "red-ld", "red-st"
    );
    for (p, n) in table1_cases() {
        let problem = KronProblem::uniform(1024, p, n).expect("valid case");
        let co = Engine::<f32>::simulate(&FtmmtEngine::new(&V100), &problem).unwrap();
        let fk = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem).unwrap();
        let scale = 1e7;
        println!(
            "{:>3} {:>3} | {:>10.2} {:>10.2} | {:>10.2} {:>10.2} | {:>7.2}x {:>7.2}x",
            p,
            n,
            co.stats.smem_load_transactions as f64 / scale,
            co.stats.smem_store_transactions as f64 / scale,
            fk.stats.smem_load_transactions as f64 / scale,
            fk.stats.smem_store_transactions as f64 / scale,
            co.stats.smem_load_transactions as f64 / fk.stats.smem_load_transactions as f64,
            co.stats.smem_store_transactions as f64 / fk.stats.smem_store_transactions as f64,
        );
    }
    println!("\nPaper reductions: loads 3.10x/2.33x/1.37x/1.72x, stores 1.02x/2.54x/3.13x/3.18x");
}
