//! Workspace-wide differential property suite: on generated shapes from
//! every family, every public execution path — naive, shuffle, FTMMT,
//! fused, pinned serial/row-tile/wide workspaces, planned, the single-node
//! serving runtime (ticket and session APIs), the distributed serving
//! runtime, and the direct sharded engine — must agree **bit-for-bit** on
//! `f32` and `f64` (see `kron-testkit` for the exactness argument).
//!
//! A failure prints the offending engine, the first differing element, and
//! a copy-pasteable `KronCase::<T>::deterministic(..)` literal; paste it
//! into `pinned_regression_corpus` below to pin it forever.

use kron_testkit::{check_all_paths, DiffElement, KronCase, ShapeFamily};
use proptest::prelude::*;
use proptest::TestRng;

fn sample_case<T: DiffElement>(family: usize, seed: u64) -> KronCase<T> {
    let mut rng = TestRng::deterministic(&format!("differential-shape-{family}-{seed}"));
    let (m, shapes) = ShapeFamily::ALL[family % ShapeFamily::ALL.len()].sample(&mut rng);
    KronCase::<T>::deterministic(m, &shapes, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_paths_agree_f64(family in 0usize..4, seed in 0u64..1 << 32) {
        let case = sample_case::<f64>(family, seed);
        let res = check_all_paths(&case);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }

    #[test]
    fn all_paths_agree_f32(family in 0usize..4, seed in 0u64..1 << 32) {
        let case = sample_case::<f32>(family, seed);
        let res = check_all_paths(&case);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }
}

/// Hand-pinned cases: one per family plus the edges that exercise every
/// special case at once (single factor, tall solo-path M, expanding then
/// contracting intermediates, shardable Figure 11-style chains). Failures
/// from the property tests get pasted here verbatim.
#[test]
fn pinned_regression_corpus() {
    // f64 corpus.
    for (case, label) in [
        (
            KronCase::<f64>::deterministic(4, &[(4, 4), (4, 4), (4, 4)], 1),
            "uniform pow2, shardable",
        ),
        (
            KronCase::<f64>::deterministic(8, &[(8, 8), (8, 8)], 2),
            "uniform pow2, wide",
        ),
        (
            KronCase::<f64>::deterministic(5, &[(3, 3), (3, 3), (3, 3)], 3),
            "uniform odd",
        ),
        (
            KronCase::<f64>::deterministic(3, &[(2, 5), (4, 2), (3, 3)], 4),
            "rectangular mixed",
        ),
        (
            KronCase::<f64>::deterministic(2, &[(5, 5), (5, 5), (5, 5), (2, 2)], 5),
            "Table 4 row 20",
        ),
        (
            KronCase::<f64>::deterministic(1, &[(6, 4)], 6),
            "single factor",
        ),
        (
            KronCase::<f64>::deterministic(33, &[(4, 4), (4, 4)], 7),
            "solo-path M",
        ),
        (
            KronCase::<f64>::deterministic(3, &[(2, 8), (8, 2)], 8),
            "expand then contract",
        ),
    ] {
        if let Err(e) = check_all_paths(&case) {
            panic!("pinned case ({label}) regressed:\n{e}");
        }
    }
    // f32 corpus (the exactness budget is the binding constraint here).
    for (case, label) in [
        (
            KronCase::<f32>::deterministic(4, &[(4, 4), (4, 4), (4, 4)], 11),
            "uniform pow2, shardable",
        ),
        (
            KronCase::<f32>::deterministic(6, &[(7, 7), (7, 7)], 12),
            "uniform odd 7",
        ),
        (
            KronCase::<f32>::deterministic(2, &[(1, 3), (5, 1), (2, 6)], 13),
            "degenerate dims",
        ),
        (
            KronCase::<f32>::deterministic(
                40,
                &[
                    (2, 2),
                    (2, 2),
                    (2, 2),
                    (2, 2),
                    (2, 2),
                    (2, 2),
                    (2, 2),
                    (2, 2),
                ],
                14,
            ),
            "deep chain, solo M",
        ),
    ] {
        if let Err(e) = check_all_paths(&case) {
            panic!("pinned case ({label}) regressed:\n{e}");
        }
    }
}
