//! The scheduler thread: drains the request channel under an adaptive
//! linger window, sheds requests whose deadline already passed, orders
//! the remainder by priority, and executes batches/solos through the
//! bounded plan cache.
//!
//! All scratch state (`pending`, the grouping table, the solo ordering
//! buffer, the factor-reference slice) is owned and reused across cycles,
//! so a warmed scheduler serves requests without allocating — the other
//! half of the crate's zero-allocation steady-state contract (the first
//! half being the plan cache's reused workspaces and batch buffers). The
//! in-cycle sorts are `sort_unstable` (in-place) for the same reason.
//!
//! Every time-dependent decision — the linger window, deadline admission,
//! the cache's idle sweep — reads the runtime's [`Clock`], so a manual
//! clock makes the whole scheduling pipeline deterministic for tests.

use crate::cache::PlanCache;
use crate::clock::Clock;
use crate::runtime::{Msg, Reply, Request, RuntimeConfig, StatsInner, NO_FAULT};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use kron_core::{Element, KronError, Matrix};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often a lingering scheduler re-reads a **manual** clock while
/// parked on the request channel. Virtual time only moves when the test
/// advances it, so the park polls at this real-time interval instead of
/// sleeping out the window; the interval affects only wall-clock test
/// latency, never which requests share a window.
const MANUAL_POLL: Duration = Duration::from_micros(200);

/// Saturation depth for the adaptive linger, in x16 fixed point: once the
/// smoothed per-cycle queue depth reaches 9 requests (1 + 8), the linger
/// sits at its cap.
const LINGER_SAT_X16: u64 = 8 * 16;

/// The load-adaptive linger window: how long the scheduler should hold a
/// batch window open, given the cap (`batch_linger_us`) and the smoothed
/// per-cycle queue depth in x16 fixed point (`16` = one request per
/// cycle).
///
/// A depth of one request per cycle means traffic is sequential —
/// lingering cannot coalesce anything, so the window collapses to zero
/// and solo latency stays minimal. As the smoothed depth grows past one,
/// the window opens proportionally, reaching the full cap at a depth of
/// nine (`1 + 8`) — by then the queue is deep enough that trading linger
/// latency for batch occupancy always pays. Monotone in the depth, never
/// exceeds the cap, and `cap == 0` disables lingering entirely.
pub fn adaptive_linger_us(cap_us: u64, ewma_depth_x16: u64) -> u64 {
    let above_one = ewma_depth_x16.saturating_sub(16);
    if above_one == 0 {
        return 0;
    }
    cap_us * above_one.min(LINGER_SAT_X16) / LINGER_SAT_X16
}

pub(crate) struct Scheduler<T: Element> {
    rx: Receiver<Msg<T>>,
    cfg: RuntimeConfig,
    /// The plan cache, shared with the runtime handle (client-side pins,
    /// sweeps, and probes). Never locked while an entry lock is held.
    cache: Arc<Mutex<PlanCache<T>>>,
    stats: Arc<StatsInner>,
    clock: Clock,
    /// One-shot device-fault flag shared with the runtime handle
    /// (`NO_FAULT` when disarmed); consumed by the next sharded execute.
    fault: Arc<AtomicUsize>,
    /// Smoothed requests-per-cycle in x16 fixed point; drives
    /// [`adaptive_linger_us`].
    ewma_depth_x16: u64,
    /// Requests drained this cycle; `None` marks served slots. Cleared
    /// (capacity kept) at the end of every cycle.
    pending: Vec<Option<Request<T>>>,
    /// Grouping table: `(model id, max priority, pending indices)` per
    /// batchable model. Entries beyond `groups_used` are retired but keep
    /// their Vec capacity for reuse.
    groups: Vec<(u64, u8, Vec<usize>)>,
    groups_used: usize,
    /// Reused `(priority, pending index)` buffer for ordering solo
    /// requests.
    solo_order: Vec<(u8, usize)>,
    /// Reused backing store for the `&[&Matrix<T>]` factor slice.
    refs_scratch: Vec<*const Matrix<T>>,
}

// SAFETY: `refs_scratch` only holds pointers transiently within one serve
// call; the scheduler is moved to its thread once and never shared.
unsafe impl<T: Element> Send for Scheduler<T> {}

/// Builds a `&[&Matrix<T>]` over `factors` in the reused scratch buffer —
/// no allocation once the scratch has grown to the largest factor count
/// seen.
fn refs_of<'a, T: Element>(
    scratch: &'a mut Vec<*const Matrix<T>>,
    factors: &'a [Matrix<T>],
) -> &'a [&'a Matrix<T>] {
    scratch.clear();
    scratch.extend(factors.iter().map(|f| f as *const Matrix<T>));
    // SAFETY: `&Matrix<T>` and `*const Matrix<T>` have identical layout,
    // every pointer is derived from a live reference in `factors`, and the
    // returned slice's lifetime ties it to both borrows.
    unsafe { std::slice::from_raw_parts(scratch.as_ptr().cast::<&Matrix<T>>(), scratch.len()) }
}

/// The staged-batch execution core shared by the chunk and staged-solo
/// paths: arm a pending device fault (consumed only if the entry has
/// devices to fault), run the staged rows, and account sharded executes.
/// Returns the result, the `rows`-prorated summary (successful sharded
/// runs only), and whether the entry must be evicted (device failure —
/// rebuild the engine rather than trust a possibly inconsistent fabric).
fn run_staged_batch<T: Element>(
    entry: &mut crate::cache::CachedPlan<T>,
    fault: &AtomicUsize,
    stats: &StatsInner,
    refs: &[&Matrix<T>],
    rows: usize,
) -> (kron_core::Result<()>, Option<gpu_sim::ExecSummary>, bool) {
    let gpu = fault.load(Ordering::SeqCst);
    if gpu != NO_FAULT && entry.arm_fault(gpu) {
        fault.store(NO_FAULT, Ordering::SeqCst);
    }
    let result = entry.run_batch(refs, rows);
    let mut summary = None;
    if result.is_ok() && entry.is_sharded() {
        stats.sharded_batches.fetch_add(1, Ordering::Relaxed);
        summary = entry.shard_summary(rows);
        if let Some(s) = summary {
            stats.comm_bytes.fetch_add(s.comm_bytes, Ordering::Relaxed);
        }
    }
    let evict = matches!(result, Err(KronError::DeviceFailure { .. }));
    (result, summary, evict)
}

impl<T: Element> Scheduler<T> {
    pub(crate) fn new(
        rx: Receiver<Msg<T>>,
        cfg: RuntimeConfig,
        cache: Arc<Mutex<PlanCache<T>>>,
        stats: Arc<StatsInner>,
        fault: Arc<AtomicUsize>,
    ) -> Self {
        let clock = cfg.clock.clone();
        Scheduler {
            rx,
            cfg,
            cache,
            stats,
            clock,
            fault,
            ewma_depth_x16: 0,
            pending: Vec::new(),
            groups: Vec::new(),
            groups_used: 0,
            solo_order: Vec::new(),
            refs_scratch: Vec::new(),
        }
    }

    /// The linger window for the next batch cycle: the configured cap,
    /// scaled by smoothed load when adaptation is on.
    fn effective_linger_us(&self) -> u64 {
        let cap = self.cfg.batch_linger_us;
        if cap == 0 || !self.cfg.adaptive_linger {
            return cap;
        }
        adaptive_linger_us(cap, self.ewma_depth_x16)
    }

    pub(crate) fn run(mut self) {
        // recv errors (every sender gone) also end the loop.
        while let Ok(msg) = self.rx.recv() {
            let mut shutting = false;
            match msg {
                Msg::Shutdown => shutting = true,
                Msg::Request(r) => {
                    self.pending.push(Some(r));
                    // Batch window: drain whatever is queued right now, up
                    // to the configured cycle size; optionally linger (per
                    // the adaptive policy) to let concurrent clients top
                    // the window up. The window is measured on the
                    // runtime's clock, so a manual clock holds it open
                    // until the test advances time.
                    let linger_us = self.effective_linger_us();
                    self.stats
                        .current_linger_us
                        .store(linger_us, Ordering::Relaxed);
                    let deadline = (linger_us > 0).then(|| self.clock.now_us() + linger_us);
                    while self.pending.len() < self.cfg.max_queue {
                        match self.rx.try_recv() {
                            Ok(Msg::Request(r)) => self.pending.push(Some(r)),
                            Ok(Msg::Shutdown) => {
                                shutting = true;
                                break;
                            }
                            Err(_) => {
                                // Queue momentarily empty: park until the
                                // linger deadline for a late arrival (no
                                // spinning — producers get the CPU).
                                let Some(d) = deadline else { break };
                                let now = self.clock.now_us();
                                if now >= d {
                                    break;
                                }
                                let wait = if self.clock.is_manual() {
                                    MANUAL_POLL
                                } else {
                                    Duration::from_micros(d - now)
                                };
                                match self.rx.recv_timeout(wait) {
                                    Ok(Msg::Request(r)) => self.pending.push(Some(r)),
                                    Ok(Msg::Shutdown) => {
                                        shutting = true;
                                        break;
                                    }
                                    Err(RecvTimeoutError::Timeout) if self.clock.is_manual() => {
                                        // Re-read the virtual clock; the
                                        // test may have advanced it.
                                        continue;
                                    }
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    self.serve_pending();
                }
            }
            if shutting {
                // The gate guarantees Shutdown is the channel's final
                // message, but drain defensively before exiting.
                loop {
                    match self.rx.try_recv() {
                        Ok(Msg::Request(r)) => self.pending.push(Some(r)),
                        Ok(Msg::Shutdown) => {}
                        Err(_) => break,
                    }
                }
                self.serve_pending();
                break;
            }
        }
    }

    /// Serves everything drained this cycle: expired deadlines shed
    /// first, then batchable requests grouped by model, ordered by
    /// priority, and chunked to `max_batch_rows`; the rest solo, also in
    /// priority order.
    fn serve_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Load signal for the next cycle's linger window.
        let depth = self.pending.len() as u64;
        self.ewma_depth_x16 = (3 * self.ewma_depth_x16 + 16 * depth) / 4;

        // Cycle-boundary idle sweep (a no-op unless the policy sets
        // `max_idle_us`).
        {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.sweep_idle(&self.stats);
        }

        // Admission control: shed requests whose deadline already passed
        // — before any plan lookup, gather, or execute.
        let now = self.clock.now_us();
        for i in 0..self.pending.len() {
            let expired = self.pending[i]
                .as_ref()
                .expect("fresh this cycle")
                .deadline_us
                .is_some_and(|d| d < now);
            if expired {
                let r = self.pending[i].take().expect("checked above");
                let deadline_us = r.deadline_us.expect("expired implies a deadline");
                self.stats.deadline_shed.fetch_add(1, Ordering::Relaxed);
                let seq = self.stats.served.fetch_add(1, Ordering::Relaxed);
                r.slot.fill(Reply {
                    result: Err(KronError::DeadlineExceeded {
                        deadline_us,
                        now_us: now,
                    }),
                    x: r.x,
                    y: r.y,
                    seq,
                    summary: None,
                });
            }
        }

        // Group batchable requests by model identity, tracking each
        // group's strongest priority.
        for g in &mut self.groups {
            g.2.clear();
        }
        self.groups_used = 0;
        for i in 0..self.pending.len() {
            let Some(r) = self.pending[i].as_ref() else {
                continue; // shed above
            };
            if r.x.rows() > self.cfg.batch_max_m {
                continue;
            }
            let (id, prio) = (r.model.id, r.priority);
            match self.groups[..self.groups_used]
                .iter()
                .position(|(gid, _, _)| *gid == id)
            {
                Some(s) => {
                    self.groups[s].1 = self.groups[s].1.max(prio);
                    self.groups[s].2.push(i);
                }
                None => {
                    if self.groups_used < self.groups.len() {
                        self.groups[self.groups_used].0 = id;
                        self.groups[self.groups_used].1 = prio;
                        self.groups[self.groups_used].2.push(i);
                    } else {
                        self.groups.push((id, prio, vec![i]));
                    }
                    self.groups_used += 1;
                }
            }
        }

        // Priority order: strongest group first; ties drain in arrival
        // order (a group's first pending index is its earliest arrival).
        self.groups[..self.groups_used].sort_unstable_by_key(|(_, prio, idxs)| {
            (Reverse(*prio), idxs.first().copied().unwrap_or(usize::MAX))
        });

        // Serve each group in row-budgeted chunks.
        for g in 0..self.groups_used {
            // Move the index list out so `serve_chunk(&mut self)` can run;
            // restored below to keep its capacity for the next cycle.
            let idxs = std::mem::take(&mut self.groups[g].2);
            let mut start = 0;
            while start < idxs.len() {
                let mut rows = 0;
                let mut end = start;
                while end < idxs.len() {
                    let m = self.pending[idxs[end]].as_ref().expect("unserved").x.rows();
                    if end > start && rows + m > self.cfg.max_batch_rows {
                        break;
                    }
                    rows += m;
                    end += 1;
                    if rows >= self.cfg.max_batch_rows {
                        break;
                    }
                }
                self.serve_chunk(&idxs[start..end], rows);
                start = end;
            }
            self.groups[g].2 = idxs;
        }

        // Everything left (large-M, or models with batching disabled), in
        // priority order.
        self.solo_order.clear();
        for i in 0..self.pending.len() {
            if let Some(r) = self.pending[i].as_ref() {
                self.solo_order.push((r.priority, i));
            }
        }
        self.solo_order
            .sort_unstable_by_key(|&(prio, i)| (Reverse(prio), i));
        for k in 0..self.solo_order.len() {
            let (_, i) = self.solo_order[k];
            if let Some(r) = self.pending[i].take() {
                self.serve_solo(r);
            }
        }
        self.pending.clear();
    }

    /// Serves a same-model chunk whose rows sum to `total_rows ≤
    /// max_batch_rows`: gather rows into the cached batch input, one fused
    /// (or sharded) execute, scatter back. A chunk of one skips the
    /// grouping bookkeeping via the solo path. The cache entry stays
    /// pinned for the whole gather/execute/scatter, so no concurrent
    /// sweep can drop the engine mid-batch.
    fn serve_chunk(&mut self, idxs: &[usize], total_rows: usize) {
        debug_assert!(!idxs.is_empty());
        if idxs.len() == 1 {
            let r = self.pending[idxs[0]].take().expect("unserved");
            self.serve_solo(r);
            return;
        }
        let model = Arc::clone(&self.pending[idxs[0]].as_ref().expect("unserved").model);
        let capacity = self.cfg.max_batch_rows;
        let pinned = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.get_or_create(&model, capacity, &self.stats)
        };
        let pinned = match pinned {
            Ok(p) => p,
            Err(err) => {
                for &i in idxs {
                    let r = self.pending[i].take().expect("unserved");
                    let seq = self.stats.served.fetch_add(1, Ordering::Relaxed);
                    r.slot.fill(Reply {
                        result: Err(err.clone()),
                        x: r.x,
                        y: r.y,
                        seq,
                        summary: None,
                    });
                }
                return;
            }
        };
        let mut entry = pinned.lock();

        // Gather request rows into the staged batch input.
        let k = model.input_cols();
        let l = model.output_cols();
        {
            let (bx, _) = entry.batch_buffers();
            let mut off = 0;
            for &i in idxs {
                let r = self.pending[i].as_ref().expect("unserved");
                let m = r.x.rows();
                bx.as_mut_slice()[off * k..(off + m) * k].copy_from_slice(r.x.as_slice());
                off += m;
            }
            debug_assert_eq!(off, total_rows);
        }

        let refs = refs_of(&mut self.refs_scratch, model.factors());
        let (result, _, evict) =
            run_staged_batch(&mut entry, &self.fault, &self.stats, refs, total_rows);

        // Scatter results back and reply with each request's prorated
        // share of the simulated sharded execution.
        let mut off = 0;
        for &i in idxs {
            let mut r = self.pending[i].take().expect("unserved");
            let m = r.x.rows();
            let mut summary = None;
            if result.is_ok() {
                r.y.as_mut_slice()
                    .copy_from_slice(&entry.batch_y().as_slice()[off * l..(off + m) * l]);
                summary = entry.shard_summary(m);
            }
            off += m;
            let seq = self.stats.served.fetch_add(1, Ordering::Relaxed);
            self.stats.batched_requests.fetch_add(1, Ordering::Relaxed);
            r.slot.fill(Reply {
                result: result.clone(),
                x: r.x,
                y: r.y,
                seq,
                summary,
            });
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        // Release the entry before touching the cache again (lock order:
        // never hold an entry lock while taking the cache lock).
        drop(entry);
        drop(pinned);
        if evict {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.evict_failed(model.shape_key, capacity, &self.stats);
        }
    }

    /// Serves one request on its own. On a local entry it executes
    /// directly from/to the request's buffers (no staging copies); on a
    /// sharded entry it stages through the batch buffers so the row count
    /// can zero-pad to a `GM` multiple. Small requests reuse the
    /// batch-capacity entry; large ones get power-of-two-capacity entries
    /// so nearby sizes share workspaces.
    fn serve_solo(&mut self, mut r: Request<T>) {
        let m = r.x.rows();
        let capacity = if m <= self.cfg.max_batch_rows {
            self.cfg.max_batch_rows
        } else {
            m.next_power_of_two()
        };
        let mut summary = None;
        let mut evict = false;
        let pinned = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.get_or_create(&r.model, capacity, &self.stats)
        };
        let result = match &pinned {
            Ok(pinned) => {
                let mut entry = pinned.lock();
                let refs = refs_of(&mut self.refs_scratch, r.model.factors());
                if entry.is_sharded() {
                    let k = r.model.input_cols();
                    let l = r.model.output_cols();
                    {
                        let (bx, _) = entry.batch_buffers();
                        bx.as_mut_slice()[..m * k].copy_from_slice(r.x.as_slice());
                    }
                    let (result, s, ev) =
                        run_staged_batch(&mut entry, &self.fault, &self.stats, refs, m);
                    if result.is_ok() {
                        r.y.as_mut_slice()
                            .copy_from_slice(&entry.batch_y().as_slice()[..m * l]);
                        summary = s;
                    }
                    evict = ev;
                    result
                } else {
                    entry.run_rows(&r.x, refs, &mut r.y, m)
                }
            }
            Err(err) => Err(err.clone()),
        };
        drop(pinned);
        if evict {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.evict_failed(r.model.shape_key, capacity, &self.stats);
        }
        let seq = self.stats.served.fetch_add(1, Ordering::Relaxed);
        self.stats.solo_requests.fetch_add(1, Ordering::Relaxed);
        r.slot.fill(Reply {
            result,
            x: r.x,
            y: r.y,
            seq,
            summary,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_linger_collapses_at_depth_one_and_saturates() {
        // Sequential traffic (one request per cycle) must not linger.
        assert_eq!(adaptive_linger_us(500, 0), 0);
        assert_eq!(adaptive_linger_us(500, 16), 0);
        // Saturation: at and past nine requests per cycle, the full cap.
        assert_eq!(adaptive_linger_us(500, 16 * 9), 500);
        assert_eq!(adaptive_linger_us(500, 16 * 100), 500);
        // In between: strictly monotone and bounded by the cap.
        let mut last = 0;
        for depth_x16 in (16..=16 * 9).step_by(16) {
            let l = adaptive_linger_us(800, depth_x16);
            assert!(l >= last, "linger must grow with load");
            assert!(l <= 800);
            last = l;
        }
        assert_eq!(last, 800);
        // A zero cap disables lingering at any load.
        assert_eq!(adaptive_linger_us(0, 16 * 100), 0);
    }
}
