//! Equivalence proptests for the wide (column-range splitting) execution
//! mode: any forced `(row_groups, col_groups)` decomposition must produce
//! exactly the serial path's output, bit-for-bit shuffle-oracle close.
//!
//! The wide mode exists for problems with `M < num_threads` (the paper's
//! Table 3/4 small-M shapes): row tiles alone cannot use a wide host, so
//! each factor step is broadcast over a `rows × column-groups` grid with
//! the broadcast acting as the inter-step barrier. The partition override
//! pins the decomposition so these tests exercise the splitting logic on
//! any machine, including single-core CI.

use fastkron_core::exec::Workspace;
use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::{assert_matrices_close, FactorShape, KronProblem, Matrix};
use proptest::prelude::*;

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 5 * r * cols + c) % 17) as f64 - 8.0
    })
}

/// Runs `problem` serially and with the forced `(rows, cols)` partition;
/// both must match the shuffle oracle.
fn check_partition(problem: &KronProblem, row_groups: usize, col_groups: usize, seed: usize) {
    let x = seq_matrix(problem.m, problem.input_cols(), seed);
    let fs: Vec<Matrix<f64>> = problem
        .factors
        .iter()
        .enumerate()
        .map(|(i, s)| seq_matrix(s.p, s.q, seed + 3 * i + 1))
        .collect();
    let refs: Vec<&Matrix<f64>> = fs.iter().collect();

    let mut serial_ws = Workspace::new(problem);
    serial_ws.set_partition(Some((1, 1)));
    let serial = serial_ws.execute(&x, &refs).unwrap();

    let mut wide_ws = Workspace::new(problem);
    wide_ws.set_partition(Some((row_groups, col_groups)));
    let wide = wide_ws.execute(&x, &refs).unwrap();

    let label = format!("{problem} split {row_groups}×{col_groups}");
    assert_eq!(
        serial.as_slice(),
        wide.as_slice(),
        "{label}: wide mode must be bit-identical to serial"
    );
    let oracle = kron_matmul_shuffle(&x, &refs).unwrap();
    assert_matrices_close(&wide, &oracle, &label);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wide_split_matches_serial_uniform(
        (m, p, n) in (1usize..=6, 2usize..=6, 1usize..=4),
        (rows, cols) in (1usize..=4, 1usize..=8),
    ) {
        let problem = KronProblem::uniform(m, p, n).unwrap();
        check_partition(&problem, rows, cols, m + p + n);
    }

    #[test]
    fn wide_split_matches_serial_rectangular(
        m in 1usize..=5,
        (p1, q1) in (1usize..=7, 1usize..=7),
        (p2, q2) in (1usize..=7, 1usize..=7),
        cols in 2usize..=6,
    ) {
        let problem = KronProblem::new(
            m,
            vec![FactorShape::new(p1, q1), FactorShape::new(p2, q2)],
        )
        .unwrap();
        check_partition(&problem, m, cols, m + p1 + q2);
    }
}

#[test]
fn wide_split_small_m_table34_shapes() {
    // The motivating shapes: M ≤ 16 with more column groups than rows,
    // exactly what a 32-thread host would pick for them.
    for &(m, p, n, cols) in &[
        (1usize, 8usize, 3usize, 8usize),
        (2, 16, 2, 16),
        (4, 8, 2, 4),
        (16, 32, 2, 2),
        (3, 5, 3, 7),
    ] {
        let problem = KronProblem::uniform(m, p, n).unwrap();
        check_partition(&problem, m, cols, m + p);
    }
}

#[test]
fn wide_split_more_groups_than_slices() {
    // col_groups far above the slice count: surplus groups get empty
    // ranges and must not corrupt anything.
    let problem = KronProblem::uniform(2, 2, 2).unwrap(); // slices = 2 per step
    check_partition(&problem, 2, 32, 9);
}

#[test]
fn wide_split_single_factor_streams_to_y() {
    // n = 1: no intermediates, X streams straight to Y under splitting.
    let problem = KronProblem::new(3, vec![FactorShape::new(6, 4)]).unwrap();
    check_partition(&problem, 3, 4, 11);
}

#[test]
fn wide_split_tall_factor_fallback() {
    // P > PANEL_MAX_P takes the strided fallback inside a split range.
    let problem = KronProblem::new(2, vec![FactorShape::new(200, 3)]).unwrap();
    check_partition(&problem, 2, 5, 13);
}

#[test]
fn execute_rows_prefix_matches_full_execute() {
    // execute_rows on a capacity-sized workspace must equal executing the
    // prefix exactly — the contract the serving runtime's batcher relies on.
    let capacity = 16;
    let problem = KronProblem::uniform(capacity, 4, 3).unwrap();
    let mut ws = Workspace::<f64>::new(&problem);
    let fs: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let refs: Vec<&Matrix<f64>> = fs.iter().collect();
    let x = seq_matrix(capacity, problem.input_cols(), 7);
    let mut y = Matrix::zeros(capacity, problem.output_cols());
    for rows in [0usize, 1, 3, 7, 16] {
        y.as_mut_slice().fill(0.0);
        ws.execute_rows(&x, &refs, &mut y, rows).unwrap();
        for r in 0..rows {
            let exact = KronProblem::uniform(1, 4, 3).unwrap();
            let xr = Matrix::from_vec(1, x.cols(), x.row(r).to_vec()).unwrap();
            let mut ws1 = Workspace::new(&exact);
            let yr = ws1.execute(&xr, &refs).unwrap();
            assert_eq!(y.row(r), yr.row(0), "row {r} of rows={rows}");
        }
        // Rows beyond the prefix stay untouched.
        for r in rows..capacity {
            assert!(y.row(r).iter().all(|&v| v == 0.0), "row {r} must be zero");
        }
    }
}

#[test]
fn execute_rows_validates() {
    let problem = KronProblem::uniform(8, 4, 2).unwrap();
    let mut ws = Workspace::<f64>::new(&problem);
    let f = seq_matrix(4, 4, 1);
    let x = seq_matrix(8, 16, 0);
    let mut y = Matrix::zeros(8, 16);
    // rows beyond capacity
    assert!(ws.execute_rows(&x, &[&f, &f], &mut y, 9).is_err());
    // operand with fewer rows than requested
    let short_x = seq_matrix(2, 16, 0);
    assert!(ws.execute_rows(&short_x, &[&f, &f], &mut y, 4).is_err());
    // wrong column counts
    let wrong_x = seq_matrix(8, 8, 0);
    assert!(ws.execute_rows(&wrong_x, &[&f, &f], &mut y, 4).is_err());
    let mut wrong_y = Matrix::zeros(8, 8);
    assert!(ws.execute_rows(&x, &[&f, &f], &mut wrong_y, 4).is_err());
    // happy path
    assert!(ws.execute_rows(&x, &[&f, &f], &mut y, 8).is_ok());
}
