//! Workspace automation. One command so far:
//!
//! ```sh
//! cargo xtask analyze
//! ```
//!
//! A source-level lint pass over the workspace's concurrency-critical
//! code, run in CI with exit 1 on any violation. Four rules:
//!
//! 1. **SAFETY comments** (workspace-wide): every `unsafe` block, impl,
//!    or fn must carry a `// SAFETY:` comment (or a `# Safety` doc
//!    section) within the preceding few lines.
//! 2. **No panics on the hot path**: `unwrap`/`expect`/`panic!` and
//!    friends are banned in the scheduler/submit modules outside
//!    `#[cfg(test)]` regions — a panicking submit path poisons lanes.
//! 3. **No allocation in zero-alloc functions**: the functions the
//!    counting-allocator gates protect (`FlightRecorder::record`, the
//!    slot reply protocol, the ring push/pop) must not call allocating
//!    std constructors.
//! 4. **Annotated `Relaxed`**: an `Ordering::Relaxed` touching a
//!    protocol atomic (gate state, bypass claim, seqlock seq, ring
//!    head/tail, sleeper count) must carry a `// relaxed:` justification
//!    on the same or a nearby preceding line.
//!
//! Exceptions live in `crates/xtask/analyze-allowlist.txt` as
//! `file|line-substring|reason` triples — reviewable, greppable, and
//! immune to line-number drift.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod scan;

use scan::FileScan;

/// Hot-path modules where rule 2 (no panics) applies.
const HOT_PATH_FILES: &[&str] = &[
    "crates/kron-runtime/src/runtime.rs",
    "crates/kron-runtime/src/scheduler.rs",
    "crates/shims/crossbeam/src/lib.rs",
];

/// Rule 3: `file -> functions` that must not allocate (the zero-alloc
/// steady-state gates prove this dynamically at test time; this rule
/// catches the regression at review time, before a gate trips).
const ZERO_ALLOC_FNS: &[(&str, &[&str])] = &[
    ("crates/kron-runtime/src/trace.rs", &["record"]),
    (
        "crates/kron-runtime/src/runtime.rs",
        &[
            "admit",
            "admit_claimed",
            "fill",
            "take_blocking",
            "try_enter",
            "exit",
            "bypass_try_claim",
            "bypass_release_claim",
        ],
    ),
    (
        "crates/shims/crossbeam/src/lib.rs",
        &["push", "pop", "send", "try_recv"],
    ),
];

/// Allocating std calls banned inside zero-alloc functions.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    "Box::new",
    ".to_vec()",
    "format!",
    "String::from",
    "to_string()",
    ".collect()",
    "collect::<",
];

/// Rule 4: `file -> protocol atomic identifiers` whose `Relaxed`
/// operations need a `// relaxed:` annotation. Plain counters are not
/// listed — `Relaxed` is their natural ordering and needs no comment.
const RELAXED_PROTOCOL_ATOMICS: &[(&str, &[&str])] = &[
    ("crates/kron-runtime/src/runtime.rs", &["state", "inflight"]),
    (
        "crates/kron-runtime/src/trace.rs",
        &["seq", "head", "drained"],
    ),
    (
        "crates/shims/crossbeam/src/lib.rs",
        &["head", "tail", "seq", "sleepers", "disconnected"],
    ),
];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_LOOKBACK: usize = 12;

/// Panic-adjacent tokens banned on the hot path.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

struct Allowlist {
    /// `(file, line-substring)` pairs; the reason column is for humans.
    entries: Vec<(String, String)>,
}

impl Allowlist {
    fn parse(text: &str) -> Self {
        let entries = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .filter_map(|l| {
                let mut parts = l.splitn(3, '|');
                let file = parts.next()?.trim().to_string();
                let needle = parts.next()?.trim().to_string();
                parts.next()?; // the reason column is mandatory
                Some((file, needle))
            })
            .collect();
        Allowlist { entries }
    }

    fn load(path: &Path) -> Self {
        Allowlist::parse(&std::fs::read_to_string(path).unwrap_or_default())
    }

    fn permits(&self, file: &str, line_text: &str) -> bool {
        self.entries
            .iter()
            .any(|(f, needle)| f == file && line_text.contains(needle.as_str()))
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask manifest has a workspace root two levels up")
        .to_path_buf()
}

fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn check_file(rel: &str, scan: &FileScan, allow: &Allowlist, violations: &mut Vec<Violation>) {
    let is_hot_path = HOT_PATH_FILES.contains(&rel);
    let zero_alloc_fns: &[&str] = ZERO_ALLOC_FNS
        .iter()
        .find(|(f, _)| *f == rel)
        .map(|(_, fns)| *fns)
        .unwrap_or(&[]);
    let relaxed_atoms: &[&str] = RELAXED_PROTOCOL_ATOMICS
        .iter()
        .find(|(f, _)| *f == rel)
        .map(|(_, ids)| *ids)
        .unwrap_or(&[]);
    let zero_alloc_lines = scan.function_body_lines(zero_alloc_fns);

    for (idx, line) in scan.lines.iter().enumerate() {
        let lineno = idx + 1;
        let waived = |text: &str| allow.permits(rel, text);

        // Rule 1: SAFETY comments, workspace-wide (test code included —
        // unsoundness in a test is still unsoundness).
        if scan.has_unsafe_token(idx) {
            let documented = (idx.saturating_sub(SAFETY_LOOKBACK)..=idx).any(|i| {
                let c = &scan.lines[i].comment;
                c.contains("SAFETY:") || c.contains("# Safety")
            });
            if !documented && !waived(&line.raw) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "unsafe-undocumented",
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment within {SAFETY_LOOKBACK} lines"
                    ),
                });
            }
        }

        // Rules 2–4 skip test regions: test-only panics and orderings
        // are not hot-path code.
        if line.in_test_region {
            continue;
        }

        if is_hot_path {
            for tok in PANIC_TOKENS {
                if line.code.contains(tok) && !waived(&line.raw) {
                    violations.push(Violation {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "hot-path-panic",
                        message: format!("`{tok}` on the scheduler/submit hot path"),
                    });
                }
            }
        }

        if zero_alloc_lines.contains(&idx) {
            for tok in ALLOC_TOKENS {
                if line.code.contains(tok) && !waived(&line.raw) {
                    violations.push(Violation {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "zero-alloc",
                        message: format!("allocating call `{tok}` in a zero-alloc function"),
                    });
                }
            }
        }

        if !relaxed_atoms.is_empty() && line.code.contains("Ordering::Relaxed") {
            let touches_protocol_atomic = relaxed_atoms.iter().any(|id| {
                line.code.contains(&format!("{id}.")) || line.code.contains(&format!("self.{id}"))
            });
            let annotated =
                (idx.saturating_sub(2)..=idx).any(|i| scan.lines[i].comment.contains("relaxed:"));
            if touches_protocol_atomic && !annotated && !waived(&line.raw) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "bare-relaxed",
                    message:
                        "`Ordering::Relaxed` on a protocol atomic without a `// relaxed:` justification"
                            .to_string(),
                });
            }
        }
    }
}

fn analyze() -> ExitCode {
    let root = workspace_root();
    let allow = Allowlist::load(&root.join("crates/xtask/analyze-allowlist.txt"));
    let mut violations = Vec::new();
    let sources = rust_sources(&root);
    for path in &sources {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let scan = FileScan::new(&text);
        check_file(&rel, &scan, &allow, &mut violations);
    }
    if violations.is_empty() {
        println!(
            "analyze: {} files clean ({} allowlist entries)",
            sources.len(),
            allow.entries.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!(
            "analyze: {} violation(s) across {} files — fix, or allowlist with a reason in crates/xtask/analyze-allowlist.txt",
            violations.len(),
            sources.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}` (try `cargo xtask analyze`)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("xtask: no command given (try `cargo xtask analyze`)");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_requires_all_three_columns() {
        let allow = Allowlist::parse(
            "# comment\n\
             crates/a.rs | foo() | reasoned exception\n\
             crates/b.rs | missing-reason\n",
        );
        assert_eq!(allow.entries.len(), 1);
        assert!(allow.permits("crates/a.rs", "    let x = foo();"));
        assert!(!allow.permits("crates/b.rs", "missing-reason"));
        assert!(!allow.permits("crates/c.rs", "foo()"));
    }

    fn violations_in(rel: &str, src: &str) -> Vec<String> {
        let scan = FileScan::new(src);
        let allow = Allowlist { entries: vec![] };
        let mut out = Vec::new();
        check_file(rel, &scan, &allow, &mut out);
        out.iter().map(|v| format!("{v}")).collect()
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_safety_comment_clears_it() {
        let bad = violations_in("crates/x/src/lib.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("unsafe-undocumented"));

        let good = violations_in(
            "crates/x/src/lib.rs",
            "// SAFETY: g has no invariants.\nfn f() { unsafe { g() } }\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn hot_path_panic_flagged_outside_tests_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   }\n";
        let v = violations_in("crates/kron-runtime/src/scheduler.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains(":1:") && v[0].contains("hot-path-panic"));
        // The same code in a non-hot-path file passes.
        assert!(violations_in("crates/kron-core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn zero_alloc_rule_scopes_to_named_functions() {
        let src = "impl R {\n\
                       fn record(&self) {\n\
                           let v = Vec::new();\n\
                       }\n\
                       fn drain(&self) {\n\
                           let v = Vec::new();\n\
                       }\n\
                   }\n";
        let v = violations_in("crates/kron-runtime/src/trace.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains(":3:") && v[0].contains("zero-alloc"));
    }

    #[test]
    fn bare_relaxed_on_protocol_atomic_needs_annotation() {
        let bad = violations_in(
            "crates/kron-runtime/src/trace.rs",
            "fn f(r: &R) { r.seq.store(1, Ordering::Relaxed); }\n",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("bare-relaxed"));

        let good = violations_in(
            "crates/kron-runtime/src/trace.rs",
            "fn f(r: &R) {\n    // relaxed: publication is ordered by the Release fence below.\n    r.seq.store(1, Ordering::Relaxed);\n}\n",
        );
        assert!(good.is_empty(), "{good:?}");

        // Relaxed on an unlisted counter needs nothing.
        let counter = violations_in(
            "crates/kron-runtime/src/trace.rs",
            "fn f(r: &R) { r.hits.fetch_add(1, Ordering::Relaxed); }\n",
        );
        assert!(counter.is_empty(), "{counter:?}");
    }
}
