//! Blocked, rayon-parallel reference matrix multiplication.
//!
//! Every baseline engine ultimately multiplies a tall-skinny reshape of the
//! input with a small factor. The blocked kernel here is cache-friendly
//! enough to make the functional path usable at the paper's problem sizes
//! while remaining obviously correct (it is also cross-checked against a
//! naive triple loop in tests).

use crate::element::Element;
use crate::error::{KronError, Result};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Cache-block edge used by [`gemm`]; 64×64 f64 blocks fit comfortably in L1.
const BLOCK: usize = 64;

/// Row-count threshold below which [`gemm`] stays single-threaded; tiny
/// multiplies are dominated by rayon dispatch otherwise.
const PAR_ROW_THRESHOLD: usize = 64;

/// Computes `C = A × B` for row-major dense matrices.
///
/// # Errors
/// Returns [`KronError::ShapeMismatch`] when `A.cols() != B.rows()`.
pub fn gemm<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_into(a, b, &mut c)?;
    Ok(c)
}

/// Computes `C = A × B` into caller-provided storage, allocating nothing.
///
/// `c` is overwritten (it is zeroed first, then accumulated into); reusing
/// one output matrix across calls is what the fused execution path's
/// workspace is built on. The inner loop is branch-free: unlike
/// [`gemm_sparse`], zero elements of `A` are multiplied like any other —
/// on dense operands the removed compare/branch per `A` element is pure
/// savings.
///
/// # Errors
/// Returns [`KronError::ShapeMismatch`] when `A.cols() != B.rows()` or `c`
/// is not `A.rows() × B.cols()`.
pub fn gemm_into<T: Element>(a: &Matrix<T>, b: &Matrix<T>, c: &mut Matrix<T>) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(KronError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("B with {} rows", b.rows()),
        });
    }
    if c.rows() != a.rows() || c.cols() != b.cols() {
        return Err(KronError::ShapeMismatch {
            expected: format!("C of shape {}×{}", a.rows(), b.cols()),
            found: format!("C of shape {}×{}", c.rows(), c.cols()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    c.as_mut_slice().fill(T::ZERO);
    if n == 0 || m == 0 {
        // Degenerate output: nothing to compute, and the chunked dispatch
        // below would be handed a zero chunk size.
        return Ok(());
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();

    let body = |(row_block_idx, c_chunk): (usize, &mut [T])| {
        let r0 = row_block_idx * BLOCK;
        let r1 = (r0 + BLOCK).min(m);
        let rows_here = r1 - r0;
        for kb in (0..k).step_by(BLOCK) {
            let k1 = (kb + BLOCK).min(k);
            for r in 0..rows_here {
                let a_row = &a_data[(r0 + r) * k..(r0 + r) * k + k];
                let c_row = &mut c_chunk[r * n..(r + 1) * n];
                for kk in kb..k1 {
                    let aval = a_row[kk];
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv = aval.mul_add(*bv, *cv);
                    }
                }
            }
        }
    };

    if m >= PAR_ROW_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(BLOCK * n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(BLOCK * n)
            .enumerate()
            .for_each(body);
    }
    Ok(())
}

/// Sparsity-aware `C = A × B`: skips zero elements of `A` entirely.
///
/// This is the old [`gemm`] hot loop with its `aval == 0` branch. On dense
/// operands the branch costs more than the skipped FMAs save, so the dense
/// path dropped it; keep using this variant when `A` is structurally sparse
/// (e.g. selection or padding matrices, identity-heavy factor chains).
///
/// # Errors
/// Returns [`KronError::ShapeMismatch`] when `A.cols() != B.rows()`.
pub fn gemm_sparse<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    if a.cols() != b.rows() {
        return Err(KronError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("B with {} rows", b.rows()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if n == 0 || m == 0 {
        return Ok(c);
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();

    let body = |(row_block_idx, c_chunk): (usize, &mut [T])| {
        let r0 = row_block_idx * BLOCK;
        let r1 = (r0 + BLOCK).min(m);
        let rows_here = r1 - r0;
        for kb in (0..k).step_by(BLOCK) {
            let k1 = (kb + BLOCK).min(k);
            for r in 0..rows_here {
                let a_row = &a_data[(r0 + r) * k..(r0 + r) * k + k];
                let c_row = &mut c_chunk[r * n..(r + 1) * n];
                for kk in kb..k1 {
                    let aval = a_row[kk];
                    if aval == T::ZERO {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv = aval.mul_add(*bv, *cv);
                    }
                }
            }
        }
    };

    if m >= PAR_ROW_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(BLOCK * n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(BLOCK * n)
            .enumerate()
            .for_each(body);
    }
    Ok(c)
}

/// Naive triple-loop `C = A × B`; the oracle for [`gemm`] itself.
pub fn gemm_naive<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    if a.cols() != b.rows() {
        return Err(KronError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("B with {} rows", b.rows()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for kk in 0..k {
                acc = a[(i, kk)].mul_add(b[(kk, j)], acc);
            }
            c[(i, j)] = acc;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_matrices_close;

    fn arb_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        // Small deterministic pseudo-random values; integers over a small
        // range keep f64 arithmetic exact so blocked == naive bit-for-bit.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 17) as f64 - 8.0
        })
    }

    #[test]
    fn blocked_matches_naive_square() {
        let a = arb_matrix(37, 41, 1);
        let b = arb_matrix(41, 29, 2);
        let fast = gemm(&a, &b).unwrap();
        let slow = gemm_naive(&a, &b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn blocked_matches_naive_tall_skinny() {
        // The shuffle algorithm's shape: very tall A, tiny B.
        let a = arb_matrix(512, 8, 3);
        let b = arb_matrix(8, 8, 4);
        assert_eq!(gemm(&a, &b).unwrap(), gemm_naive(&a, &b).unwrap());
    }

    #[test]
    fn blocked_matches_naive_above_parallel_threshold() {
        let a = arb_matrix(PAR_ROW_THRESHOLD * 2 + 3, 33, 5);
        let b = arb_matrix(33, 17, 6);
        assert_eq!(gemm(&a, &b).unwrap(), gemm_naive(&a, &b).unwrap());
    }

    #[test]
    fn identity_is_noop() {
        let a = arb_matrix(13, 13, 7);
        let i = Matrix::<f64>::identity(13);
        assert_matrices_close(&gemm(&a, &i).unwrap(), &a, "A·I");
        assert_matrices_close(&gemm(&i, &a).unwrap(), &a, "I·A");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(4, 2);
        assert!(matches!(gemm(&a, &b), Err(KronError::ShapeMismatch { .. })));
        assert!(gemm_naive(&a, &b).is_err());
    }

    #[test]
    fn single_element() {
        let a = Matrix::<f64>::from_vec(1, 1, vec![3.0]).unwrap();
        let b = Matrix::<f64>::from_vec(1, 1, vec![-2.0]).unwrap();
        assert_eq!(gemm(&a, &b).unwrap()[(0, 0)], -6.0);
    }

    #[test]
    fn sparse_variant_matches_dense() {
        // Heavy zero content so the skip branch actually fires.
        let mut a = arb_matrix(70, 40, 8);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let b = arb_matrix(40, 23, 9);
        assert_eq!(gemm_sparse(&a, &b).unwrap(), gemm(&a, &b).unwrap());
        let bad = Matrix::<f64>::zeros(41, 2);
        assert!(gemm_sparse(&a, &bad).is_err());
    }

    #[test]
    fn gemm_into_reuses_storage() {
        let a = arb_matrix(9, 12, 10);
        let b = arb_matrix(12, 7, 11);
        let mut c = Matrix::<f64>::from_fn(9, 7, |_, _| 99.0); // stale junk
        gemm_into(&a, &b, &mut c).unwrap();
        assert_eq!(c, gemm_naive(&a, &b).unwrap());
        // Second multiply into the same storage fully overwrites it.
        let a2 = arb_matrix(9, 12, 12);
        gemm_into(&a2, &b, &mut c).unwrap();
        assert_eq!(c, gemm_naive(&a2, &b).unwrap());
    }

    #[test]
    fn gemm_into_validates_output_shape() {
        let a = arb_matrix(4, 5, 13);
        let b = arb_matrix(5, 6, 14);
        let mut wrong = Matrix::<f64>::zeros(4, 5);
        assert!(matches!(
            gemm_into(&a, &b, &mut wrong),
            Err(KronError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn zero_width_operands_do_not_panic() {
        // B with zero columns (and a zero-row A) are constructible through
        // the public API; the chunked dispatch must not be handed a zero
        // chunk size.
        let a = arb_matrix(3, 4, 15);
        let b = Matrix::<f64>::zeros(4, 0);
        let c = gemm(&a, &b).unwrap();
        assert_eq!((c.rows(), c.cols()), (3, 0));
        assert_eq!(gemm_sparse(&a, &b).unwrap().cols(), 0);
        let empty_a = Matrix::<f64>::zeros(0, 4);
        let wide_b = arb_matrix(4, 5, 16);
        assert_eq!(gemm(&empty_a, &wide_b).unwrap().rows(), 0);
    }
}
