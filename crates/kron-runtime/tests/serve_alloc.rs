//! Counting-allocator proof of the runtime's steady-state contract: after
//! warmup, serving a request through a [`Session`] performs **zero heap
//! allocations** across the whole process — client submit, channel
//! handoff, scheduler batching scratch, plan-cache lookup, fused execute,
//! and reply all reuse warmed state.
//!
//! This extends `fastkron-core`'s `alloc_free` test (which proves the
//! execute path alone is allocation-free) up through the serving stack.
//! The allocator counts from every thread, so the scheduler thread is
//! covered, not just the client.

use kron_core::{assert_matrices_close, Matrix};
use kron_runtime::{Backend, Runtime, RuntimeConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` — every layout/pointer
// contract is forwarded unchanged; the only addition is a relaxed
// counter bump, which touches no allocator state.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: pass-through to `System::realloc`, contracts forwarded.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, result)
}

/// The counter is process-global, so the two tests in this binary must
/// not run concurrently — a sibling test's allocations inside this
/// test's measurement window would flake it.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + r * cols + c) % 13) as f64 - 6.0
    })
}

#[test]
fn steady_state_serving_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 64,
        ..RuntimeConfig::default()
    });
    // A Table 3/4-style small-M serving shape: M=4 against 4⊗4 factors.
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    let mut session = runtime.session();

    let mut x = seq_matrix(4, model.input_cols(), 3);
    let mut y = Matrix::zeros(4, model.output_cols());

    // Warmup: grows the channel queue, scheduler scratch, plan cache
    // entry (tuned plan + workspace), and the session slot to their
    // steady-state capacities.
    for _ in 0..16 {
        (x, y) = session.call(&model, x, y).unwrap();
    }

    const SERVED: usize = 64;
    let (allocs, moved) = allocations_during(|| {
        let mut bufs = (x, y);
        for _ in 0..SERVED {
            bufs = session.call(&model, bufs.0, bufs.1).unwrap();
        }
        bufs
    });
    let (x, y) = moved;
    assert_eq!(
        allocs, 0,
        "serving {SERVED} warm requests allocated {allocs} times \
         (expected zero steady-state allocations per served request)"
    );

    // The served results are still right, not just cheap.
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let oracle = kron_core::shuffle::kron_matmul_shuffle(&x, &refs).unwrap();
    assert_matrices_close(&y, &oracle, "steady-state result");

    // And the cache really did plan exactly once for this shape.
    let stats = runtime.stats();
    assert_eq!(stats.plan_misses, 1, "stats: {stats:?}");
    assert_eq!(stats.served, 16 + SERVED as u64);
}

/// The erased-runtime contract: ONE runtime serving interleaved f32 and
/// f64 sessions stays allocation-free once both dtype lanes are warm.
/// The erased request enum is a move (never a box), the scheduler's
/// typed-lane scratch and the global ordering buffers are reused, and the
/// dtype-spanning plan cache hands both entries out lock-only — so mixing
/// dtypes costs exactly zero allocations per request, same as the
/// monomorphic runtime did.
#[test]
fn steady_state_mixed_dtype_serving_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 64,
        ..RuntimeConfig::default()
    });
    let f64_factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let f32_factors: Vec<Matrix<f32>> = (0..2)
        .map(|i| Matrix::from_fn(4, 4, |r, c| (((i + 1) + r * 4 + c) % 13) as f32 - 6.0))
        .collect();
    let model64 = runtime.load_model(f64_factors.clone()).unwrap();
    let model32 = runtime.load_model(f32_factors.clone()).unwrap();
    let mut session64 = runtime.session::<f64>();
    let mut session32 = runtime.session::<f32>();

    let mut x64 = seq_matrix(4, model64.input_cols(), 3);
    let mut y64 = Matrix::zeros(4, model64.output_cols());
    let mut x32 = Matrix::<f32>::from_fn(4, model32.input_cols(), |r, c| ((3 + r + c) % 9) as f32);
    let mut y32 = Matrix::<f32>::zeros(4, model32.output_cols());

    // Warm both dtype lanes: channel queues, per-lane scheduler scratch,
    // the global ordering buffers, one plan-cache entry per dtype, and
    // both session slots.
    for _ in 0..16 {
        (x64, y64) = session64.call(&model64, x64, y64).unwrap();
        (x32, y32) = session32.call(&model32, x32, y32).unwrap();
    }

    const SERVED: usize = 32;
    let (allocs, moved) = allocations_during(|| {
        let mut b64 = (x64, y64);
        let mut b32 = (x32, y32);
        for _ in 0..SERVED {
            b64 = session64.call(&model64, b64.0, b64.1).unwrap();
            b32 = session32.call(&model32, b32.0, b32.1).unwrap();
        }
        (b64, b32)
    });
    let ((x64, y64), (x32, y32)) = moved;
    assert_eq!(
        allocs, 0,
        "serving {SERVED} interleaved f32+f64 request pairs allocated {allocs} times \
         (expected zero steady-state allocations through the erased runtime)"
    );

    // Both lanes still serve the right numbers.
    let refs64: Vec<&Matrix<f64>> = f64_factors.iter().collect();
    let oracle64 = kron_core::shuffle::kron_matmul_shuffle(&x64, &refs64).unwrap();
    assert_matrices_close(&y64, &oracle64, "mixed steady-state f64 result");
    let refs32: Vec<&Matrix<f32>> = f32_factors.iter().collect();
    let oracle32 = kron_core::shuffle::kron_matmul_shuffle(&x32, &refs32).unwrap();
    assert_matrices_close(&y32, &oracle32, "mixed steady-state f32 result");

    // One plan per dtype, both counted on the one stats surface.
    let stats = runtime.stats();
    assert_eq!(stats.plan_misses, 2, "stats: {stats:?}");
    assert_eq!(stats.requests_f64, (16 + SERVED) as u64, "stats: {stats:?}");
    assert_eq!(stats.requests_f32, (16 + SERVED) as u64, "stats: {stats:?}");
}

/// The same contract across the simulated multi-GPU machine: once the
/// sharded engine, its per-device blocks, and the circulating exchange
/// buffers are warm, serving a request through the `Distributed` backend —
/// gather, `GM × GK` device commands, `Nlocal`-grouped local multiplies,
/// the all-to-all relocation rounds, scatter, and the per-request
/// simulated-stats reply — allocates **nothing**, on any thread.
#[test]
fn steady_state_sharded_serving_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 64,
        backend: Backend::Distributed {
            gpus: 4,
            p2p: false,
        },
        ..RuntimeConfig::default()
    });
    // Shardable over the {2, 2} grid: K = 16, GK = 2 | 16, GK ≤ P.
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    let mut session = runtime.session();

    let mut x = seq_matrix(4, model.input_cols(), 3);
    let mut y = Matrix::zeros(4, model.output_cols());

    // Warmup: plan the sharded engine, spawn its device threads, grow the
    // channel queues, and let the exchange buffers reach circulation.
    for _ in 0..16 {
        (x, y) = session.call(&model, x, y).unwrap();
    }

    const SERVED: usize = 64;
    let (allocs, moved) = allocations_during(|| {
        let mut bufs = (x, y);
        for _ in 0..SERVED {
            bufs = session.call(&model, bufs.0, bufs.1).unwrap();
        }
        bufs
    });
    let (x, y) = moved;
    assert_eq!(
        allocs, 0,
        "sharded serving of {SERVED} warm requests allocated {allocs} times \
         (expected zero steady-state allocations per request)"
    );

    // Served correctly, actually sharded, and stats flowed back.
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let oracle = kron_core::shuffle::kron_matmul_shuffle(&x, &refs).unwrap();
    assert_matrices_close(&y, &oracle, "sharded steady-state result");
    let stats = runtime.stats();
    assert_eq!(stats.plan_misses, 1, "stats: {stats:?}");
    assert_eq!(
        stats.sharded_batches,
        16 + SERVED as u64,
        "stats: {stats:?}"
    );
    assert_eq!(stats.local_fallbacks, 0, "stats: {stats:?}");
    assert!(
        session.last_shard_summary().is_some(),
        "sharded session calls carry a summary"
    );
}

/// The flight deck must cost nothing to keep lit: with every instrument
/// active — per-request stage timelines stamped on each reply, per-stage
/// and per-outcome log2 histograms, the per-model and per-device
/// registries, Admit/BatchFormed/Execute events into the flight
/// recorder — warm serving still allocates **zero** times. The
/// histograms are preallocated atomics, the event ring is fixed-capacity
/// seqlock slots, and the registries stop growing once their keys are
/// warm; only the *readouts* (snapshot, drain) may allocate, and those
/// happen outside the measured window.
#[test]
fn steady_state_serving_with_instruments_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 64,
        backend: Backend::Distributed {
            gpus: 4,
            p2p: false,
        },
        ..RuntimeConfig::default()
    });
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    let mut session = runtime.session();

    let mut x = seq_matrix(4, model.input_cols(), 3);
    let mut y = Matrix::zeros(4, model.output_cols());
    for _ in 0..16 {
        (x, y) = session.call(&model, x, y).unwrap();
    }
    // Retire warmup traffic from the recorder so the post-window drain
    // observably covers events recorded *inside* the measured window.
    runtime.drain_events();
    let warm = runtime.metrics_snapshot();

    const SERVED: usize = 64;
    let (allocs, moved) = allocations_during(|| {
        let mut bufs = (x, y);
        for _ in 0..SERVED {
            bufs = session.call(&model, bufs.0, bufs.1).unwrap();
        }
        bufs
    });
    let (x, y) = moved;
    assert_eq!(
        allocs, 0,
        "serving {SERVED} warm requests with histograms, timelines, \
         registries, and the flight recorder active allocated {allocs} \
         times (expected the instruments to be allocation-free)"
    );

    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let oracle = kron_core::shuffle::kron_matmul_shuffle(&x, &refs).unwrap();
    assert_matrices_close(&y, &oracle, "instrumented steady-state result");

    // Everything served inside the window was observed: the histograms
    // advanced by exactly SERVED, the model registry attributed them,
    // the device registry saw every sharded execute, and the recorder
    // holds the window's admit/execute trail.
    let snap = runtime.metrics_snapshot();
    let count = |s: &kron_runtime::MetricsSnapshot, want: kron_runtime::Stage| {
        s.stages
            .iter()
            .find(|(stage, _)| *stage == want)
            .map(|(_, h)| h.count)
            .unwrap()
    };
    let total_before = count(&warm, kron_runtime::Stage::Total);
    let total_after = count(&snap, kron_runtime::Stage::Total);
    assert_eq!(total_after - total_before, SERVED as u64);
    let entry = runtime
        .model_stats()
        .into_iter()
        .find(|m| m.shape_key == model.shape_key())
        .expect("served model is registered");
    assert_eq!(entry.serves, 16 + SERVED as u64);
    for d in &runtime.device_health() {
        assert_eq!(d.metrics.executes, 16 + SERVED as u64, "gpu {}", d.gpu);
    }
    let events = runtime.drain_events();
    use kron_runtime::ServeEventKind;
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::Admit { .. })),
        "window admits reached the recorder"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::Execute { ok: true, .. })),
        "window executes reached the recorder"
    );
}

/// The self-healing machinery must cost nothing once the storm passes:
/// after a device fault is retried away (evict, rebuild, re-execute) and
/// the health ledger returns to clean, warm serving is allocation-free
/// again — the retry scratch, fault plane, and breaker fast path leave
/// no per-request residue.
#[test]
fn steady_state_after_fault_recovery_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 64,
        backend: Backend::Distributed {
            gpus: 4,
            p2p: false,
        },
        ..RuntimeConfig::default()
    });
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    let mut session = runtime.session();

    let mut x = seq_matrix(4, model.input_cols(), 3);
    let mut y = Matrix::zeros(4, model.output_cols());
    for _ in 0..8 {
        (x, y) = session.call(&model, x, y).unwrap();
    }

    // The storm: a one-shot device fault, transparently retried away
    // (allocates freely — eviction and rebuild are the expensive path).
    runtime.inject_device_fault(2).unwrap();
    (x, y) = session.call(&model, x, y).unwrap();
    let stats = runtime.stats();
    assert!(stats.retries >= 1, "the fault must have fired: {stats:?}");
    assert!(stats.evictions >= 1, "stats: {stats:?}");

    // Re-warm the rebuilt engine, then hold the steady-state bar.
    for _ in 0..16 {
        (x, y) = session.call(&model, x, y).unwrap();
    }
    const SERVED: usize = 64;
    let (allocs, moved) = allocations_during(|| {
        let mut bufs = (x, y);
        for _ in 0..SERVED {
            bufs = session.call(&model, bufs.0, bufs.1).unwrap();
        }
        bufs
    });
    let (x, y) = moved;
    assert_eq!(
        allocs, 0,
        "post-recovery serving of {SERVED} warm requests allocated {allocs} times \
         (expected the self-healing path to leave zero steady-state residue)"
    );

    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let oracle = kron_core::shuffle::kron_matmul_shuffle(&x, &refs).unwrap();
    assert_matrices_close(&y, &oracle, "post-recovery steady-state result");
    assert_eq!(runtime.stats().local_fallbacks, 0);
}

/// The bypass lane holds the same bar explicitly: with warm plans, an
/// empty admission queue, and mixed f32/f64 sessions calling
/// sequentially, every request takes the inline lane (`bypassed_requests`
/// advances one-for-one) and the whole round trip — eligibility check,
/// warm-plan pin, fused execute, reply — allocates **zero** times. The
/// session's pointer scratch, the pinned cache entry, and the reply slot
/// are all reused steady state.
#[test]
fn steady_state_bypass_lane_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 64,
        ..RuntimeConfig::default()
    });
    let f64_factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let f32_factors: Vec<Matrix<f32>> = (0..2)
        .map(|i| Matrix::from_fn(4, 4, |r, c| (((i + 1) + r * 4 + c) % 13) as f32 - 6.0))
        .collect();
    let model64 = runtime.load_model(f64_factors.clone()).unwrap();
    let model32 = runtime.load_model(f32_factors.clone()).unwrap();
    let mut session64 = runtime.session::<f64>();
    let mut session32 = runtime.session::<f32>();

    let mut x64 = seq_matrix(4, model64.input_cols(), 3);
    let mut y64 = Matrix::zeros(4, model64.output_cols());
    let mut x32 = Matrix::<f32>::from_fn(4, model32.input_cols(), |r, c| ((3 + r + c) % 9) as f32);
    let mut y32 = Matrix::<f32>::zeros(4, model32.output_cols());

    // Warm both dtype lanes. The first call per dtype is cold (plan
    // build through the scheduler); everything after is bypass-eligible:
    // the queue is empty and the plan is warm by the time each
    // subsequent call submits.
    for _ in 0..16 {
        (x64, y64) = session64.call(&model64, x64, y64).unwrap();
        (x32, y32) = session32.call(&model32, x32, y32).unwrap();
    }
    let bypassed_before = runtime.stats().bypassed_requests;
    assert!(
        bypassed_before >= 1,
        "warm sequential traffic already bypasses: {:?}",
        runtime.stats()
    );

    const SERVED: usize = 32;
    let (allocs, moved) = allocations_during(|| {
        let mut b64 = (x64, y64);
        let mut b32 = (x32, y32);
        for _ in 0..SERVED {
            b64 = session64.call(&model64, b64.0, b64.1).unwrap();
            b32 = session32.call(&model32, b32.0, b32.1).unwrap();
        }
        (b64, b32)
    });
    let ((x64, y64), (x32, y32)) = moved;
    assert_eq!(
        allocs, 0,
        "bypassing {SERVED} interleaved f32+f64 request pairs allocated {allocs} times \
         (expected the inline lane to be allocation-free)"
    );

    // Every measured request took the inline lane — none fell back to
    // the scheduler — and both dtypes still serve the right numbers.
    let stats = runtime.stats();
    assert_eq!(
        stats.bypassed_requests - bypassed_before,
        2 * SERVED as u64,
        "stats: {stats:?}"
    );
    assert_eq!(stats.inflight_requests, 0, "stats: {stats:?}");
    let refs64: Vec<&Matrix<f64>> = f64_factors.iter().collect();
    let oracle64 = kron_core::shuffle::kron_matmul_shuffle(&x64, &refs64).unwrap();
    assert_matrices_close(&y64, &oracle64, "bypassed f64 result");
    let refs32: Vec<&Matrix<f32>> = f32_factors.iter().collect();
    let oracle32 = kron_core::shuffle::kron_matmul_shuffle(&x32, &refs32).unwrap();
    assert_matrices_close(&y32, &oracle32, "bypassed f32 result");
}

/// The sharded scheduler topology holds the same bar: with four service
/// lanes live (idle siblings polling their rings and probing for work to
/// steal), two warm models hashed to different lanes serving through the
/// scheduler path allocate **zero** times steady state. The lock-free
/// admission ring, the per-lane depth gauges, the steal probe, and the
/// per-lane counters are all preallocated atomics — scaling the lane
/// count must not reintroduce per-request heap traffic anywhere in the
/// process.
#[test]
fn steady_state_lane_sharded_serving_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        max_queue: 64,
        scheduler_lanes: 4,
        inline_bypass: false,
        ..RuntimeConfig::default()
    });
    // Hash-distinct shapes so the two models exercise different lanes.
    let f_a: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i + 1)).collect();
    let f_b: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(2, 2, i + 4)).collect();
    let model_a = runtime.load_model(f_a.clone()).unwrap();
    let model_b = runtime.load_model(f_b.clone()).unwrap();
    let mut session = runtime.session();

    let mut xa = seq_matrix(4, model_a.input_cols(), 3);
    let mut ya = Matrix::zeros(4, model_a.output_cols());
    let mut xb = seq_matrix(4, model_b.input_cols(), 5);
    let mut yb = Matrix::zeros(4, model_b.output_cols());

    // Warm both lanes: plans built, rings circulated, reply slots and
    // batching scratch grown to steady size on every lane involved.
    for _ in 0..16 {
        (xa, ya) = session.call(&model_a, xa, ya).unwrap();
        (xb, yb) = session.call(&model_b, xb, yb).unwrap();
    }

    const SERVED: usize = 32;
    let (allocs, moved) = allocations_during(|| {
        let mut ba = (xa, ya);
        let mut bb = (xb, yb);
        for _ in 0..SERVED {
            ba = session.call(&model_a, ba.0, ba.1).unwrap();
            bb = session.call(&model_b, bb.0, bb.1).unwrap();
        }
        (ba, bb)
    });
    let ((xa, ya), (xb, yb)) = moved;
    assert_eq!(
        allocs, 0,
        "lane-sharded serving of {SERVED} warm request pairs allocated {allocs} times \
         (expected zero steady-state allocations per request across all lanes)"
    );

    // Right answers, full reconciliation across the lane topology.
    let refs_a: Vec<&Matrix<f64>> = f_a.iter().collect();
    let oracle_a = kron_core::shuffle::kron_matmul_shuffle(&xa, &refs_a).unwrap();
    assert_matrices_close(&ya, &oracle_a, "lane-sharded result A");
    let refs_b: Vec<&Matrix<f64>> = f_b.iter().collect();
    let oracle_b = kron_core::shuffle::kron_matmul_shuffle(&xb, &refs_b).unwrap();
    assert_matrices_close(&yb, &oracle_b, "lane-sharded result B");
    let stats = runtime.stats();
    assert_eq!(stats.scheduler_lanes, 4, "stats: {stats:?}");
    assert_eq!(stats.inflight_requests, 0, "stats: {stats:?}");
    let lane_served: u64 = stats.lanes().iter().map(|l| l.served).sum();
    assert_eq!(lane_served, stats.served, "stats: {stats:?}");
    for (i, lane) in stats.lanes().iter().enumerate() {
        assert_eq!(lane.inflight, 0, "lane {i} gauge: {lane:?}");
    }
}
