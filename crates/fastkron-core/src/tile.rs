//! Tile-size configuration for the sliced-multiply kernel (§4 of the paper).
//!
//! A thread block multiplies a `{TM, TK}` block of `X` with `TQ` columns of
//! `F` to produce a `{TM, TK/P · TQ}` block of `Y`; the factor's `P` rows
//! are streamed through shared memory in tiles of `TP`. Each thread owns
//! `RK` slices × `RQ` columns of the output and accumulates `RP` factor
//! rows per inner step.

use gpu_sim::cost::LaunchConfig;
use kron_core::{DType, KronError, Result};

/// How shared memory is addressed when staging `X` slices (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Caching {
    /// FastKron's shift caching: element `e` of slice `s` is stored at
    /// `s·TP + (e + s/RK) mod TP`, spreading consecutive threads' slices
    /// across banks. Bounds conflicts by `⌈warp/TP⌉`.
    Shift,
    /// The standard layout used by CUTLASS/COGENT ("direct caching"):
    /// element `e` of slice `s` at `s·TP + e`. When `TP·(stride between
    /// consecutive threads' slices)` is a multiple of the bank count, every
    /// lane hits the same bank — the pathology of §4.1.
    Direct,
}

/// Tile sizes for one sliced-multiply kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Rows of `X` per thread block.
    pub tm: usize,
    /// Columns of `X` per thread block (multiple of `P`).
    pub tk: usize,
    /// Columns of `F` per thread block (divides `Q`).
    pub tq: usize,
    /// Rows of `F` staged per shared-memory tile (divides `P`).
    pub tp: usize,
    /// Slices of `X` per thread (divides `TK/P`).
    pub rk: usize,
    /// Columns of `F` per thread (divides `TQ`).
    pub rq: usize,
    /// Factor rows accumulated per inner iteration (divides `TP`).
    pub rp: usize,
    /// Shared-memory addressing scheme.
    pub caching: Caching,
}

impl TileConfig {
    /// Number of slices a block owns (`TK / P`).
    pub fn slices(&self, p: usize) -> usize {
        self.tk / p
    }

    /// Threads per block: `(TK/P / RK) × (TQ/RQ)`.
    pub fn threads(&self, p: usize) -> usize {
        (self.slices(p) / self.rk) * (self.tq / self.rq)
    }

    /// Shared-memory bytes for the unfused kernel: `TM×Ks` of `X`
    /// (`Ks = slices·TP`) plus `TP×TQ` of `F`.
    pub fn shared_bytes(&self, p: usize, dtype: DType) -> usize {
        (self.tm * self.slices(p) * self.tp + self.tp * self.tq) * dtype.bytes()
    }

    /// Shared-memory bytes for the fused kernel: two `TM×TK` buffers
    /// (double-buffered intermediate) plus the factor tile.
    pub fn shared_bytes_fused(&self, _p: usize, dtype: DType) -> usize {
        (2 * self.tm * self.tk + self.tp * self.tq) * dtype.bytes()
    }

    /// Estimated registers per thread: the `Yr[TM][RK][RQ]` accumulators,
    /// the `Xr[TM][RK][RP]` and `Fr[RP][RQ]` staging tiles (doubled for
    /// f64), plus a fixed allowance for address arithmetic.
    pub fn regs_per_thread(&self, dtype: DType) -> usize {
        let words = dtype.bytes() / 4;
        (self.tm * self.rk * self.rq + self.tm * self.rk * self.rp + self.rp * self.rq) * words + 24
    }

    /// Validates this configuration against a problem iteration
    /// (`m`, intermediate columns `k`, factor `p × q`) per the rules in
    /// §4.3.
    ///
    /// # Errors
    /// [`KronError::InvalidTileConfig`] naming the violated rule.
    pub fn validate(&self, m: usize, k: usize, p: usize, q: usize) -> Result<()> {
        let fail = |reason: String| Err(KronError::InvalidTileConfig { reason });
        if self.tk == 0 || self.tp == 0 || self.tq == 0 || self.tm == 0 {
            return fail("tile sizes must be positive".into());
        }
        if !self.tk.is_multiple_of(p) {
            return fail(format!("TK = {} must be a multiple of P = {p}", self.tk));
        }
        if self.tk > k {
            return fail(format!("TK = {} exceeds K = {k}", self.tk));
        }
        if !k.is_multiple_of(self.tk) {
            return fail(format!("TK = {} must divide K = {k}", self.tk));
        }
        if !p.is_multiple_of(self.tp) {
            return fail(format!("TP = {} must divide P = {p}", self.tp));
        }
        if !q.is_multiple_of(self.tq) {
            return fail(format!("TQ = {} must divide Q = {q}", self.tq));
        }
        if self.tm > m {
            return fail(format!("TM = {} exceeds M = {m}", self.tm));
        }
        let slices = self.tk / p;
        if slices == 0 || !slices.is_multiple_of(self.rk) {
            return fail(format!("RK = {} must divide TK/P = {slices}", self.rk));
        }
        if !self.tq.is_multiple_of(self.rq) {
            return fail(format!("RQ = {} must divide TQ = {}", self.rq, self.tq));
        }
        if !self.tp.is_multiple_of(self.rp) {
            return fail(format!("RP = {} must divide TP = {}", self.rp, self.tp));
        }
        Ok(())
    }

    /// Grid dimensions `{⌈M/TM⌉, K/TK, Q/TQ}` for one launch.
    pub fn grid(&self, m: usize, k: usize, q: usize) -> (usize, usize, usize) {
        (m.div_ceil(self.tm), k / self.tk, q / self.tq)
    }

    /// Builds the [`LaunchConfig`] for the unfused kernel on iteration
    /// shape `(m, k, p, q)`.
    pub fn launch(&self, m: usize, k: usize, p: usize, q: usize, dtype: DType) -> LaunchConfig {
        let (gx, gy, gz) = self.grid(m, k, q);
        LaunchConfig {
            grid_blocks: gx * gy * gz,
            threads_per_block: self.threads(p),
            shared_mem_per_block: self.shared_bytes(p, dtype),
            regs_per_thread: self.regs_per_thread(dtype),
        }
    }

    /// Builds the [`LaunchConfig`] for the fused kernel (grid has no
    /// `Q/TQ` dimension because the fused kernel processes all `Q`
    /// columns).
    pub fn launch_fused(&self, m: usize, k: usize, p: usize, dtype: DType) -> LaunchConfig {
        let (gx, gy, _) = self.grid(m, k, self.tq);
        LaunchConfig {
            grid_blocks: gx * gy,
            threads_per_block: self.threads(p),
            shared_mem_per_block: self.shared_bytes_fused(p, dtype),
            regs_per_thread: self.regs_per_thread(dtype),
        }
    }

    /// A conservative configuration valid for any `(m, k, p, q)` with
    /// `k = S·p`: one slice and one column per thread, full factor staged.
    /// Used as the tuner's fallback and in tests.
    pub fn minimal(m: usize, k: usize, p: usize, q: usize) -> TileConfig {
        let _ = m;
        let _ = q;
        TileConfig {
            tm: 1,
            tk: k.min(p * p.max(2)).min(k),
            tq: 1,
            tp: p,
            rk: 1,
            rq: 1,
            rp: 1,
            caching: Caching::Shift,
        }
        .snapped(k, p)
    }

    /// Adjusts `TK` down to the largest valid divisor-of-`k` multiple of
    /// `p` not exceeding the current value (helper for constructors).
    fn snapped(mut self, k: usize, p: usize) -> TileConfig {
        let mut tk = self.tk - (self.tk % p);
        while tk > p && !k.is_multiple_of(tk) {
            tk -= p;
        }
        self.tk = tk.max(p);
        self
    }
}

/// Number of consecutive sliced multiplications one fused kernel can chain:
/// `⌊log_P TK⌋` (§4.2), and never more than the factors remaining.
pub fn max_fused(tk: usize, p: usize, remaining: usize) -> usize {
    if p < 2 {
        return 1;
    }
    let mut n = 0;
    let mut cap = tk;
    while cap >= p {
        cap /= p;
        n += 1;
    }
    n.clamp(1, remaining)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(
        tm: usize,
        tk: usize,
        tq: usize,
        tp: usize,
        rk: usize,
        rq: usize,
        rp: usize,
    ) -> TileConfig {
        TileConfig {
            tm,
            tk,
            tq,
            tp,
            rk,
            rq,
            rp,
            caching: Caching::Shift,
        }
    }

    #[test]
    fn paper_figure4_example() {
        // Figure 4: X 2×512, F 8×8, TM=1, TK=512, TQ=2, TP=4, RP=2, RQ=2, RK=2.
        let c = cfg(1, 512, 2, 4, 2, 2, 2);
        c.validate(2, 512, 8, 8).unwrap();
        assert_eq!(c.slices(8), 64);
        // Threads: (64/2)×(2/2) = 32.
        assert_eq!(c.threads(8), 32);
        // Grid: {2/1, 512/512, 8/2} = {2, 1, 4}.
        assert_eq!(c.grid(2, 512, 8), (2, 1, 4));
        // Shared: Xs = 1×64×4, Fs = 4×2.
        assert_eq!(c.shared_bytes(8, DType::F32), (256 + 8) * 4);
    }

    #[test]
    fn validation_rules() {
        // TK not a multiple of P.
        assert!(cfg(1, 510, 2, 4, 2, 2, 2).validate(2, 512, 8, 8).is_err());
        // TP does not divide P.
        assert!(cfg(1, 512, 2, 3, 2, 2, 1).validate(2, 512, 8, 8).is_err());
        // TQ does not divide Q.
        assert!(cfg(1, 512, 3, 4, 2, 1, 2).validate(2, 512, 8, 8).is_err());
        // RK does not divide slices.
        assert!(cfg(1, 512, 2, 4, 3, 2, 2).validate(2, 512, 8, 8).is_err());
        // RQ does not divide TQ.
        assert!(cfg(1, 512, 2, 4, 2, 3, 2).validate(2, 512, 8, 8).is_err());
        // RP does not divide TP.
        assert!(cfg(1, 512, 2, 4, 2, 2, 3).validate(2, 512, 8, 8).is_err());
        // TK > K.
        assert!(cfg(1, 1024, 2, 4, 2, 2, 2).validate(2, 512, 8, 8).is_err());
        // TM > M.
        assert!(cfg(4, 512, 2, 4, 2, 2, 2).validate(2, 512, 8, 8).is_err());
        // Zero tile.
        assert!(cfg(0, 512, 2, 4, 2, 2, 2).validate(2, 512, 8, 8).is_err());
    }

    #[test]
    fn fused_shared_memory_doubles_x_buffer() {
        let c = cfg(1, 256, 4, 4, 2, 2, 2);
        assert_eq!(c.shared_bytes_fused(4, DType::F32), (2 * 256 + 16) * 4);
    }

    #[test]
    fn register_estimate_scales_with_dtype() {
        let c = cfg(2, 512, 2, 4, 2, 2, 2);
        let f32_regs = c.regs_per_thread(DType::F32);
        let f64_regs = c.regs_per_thread(DType::F64);
        assert!(f64_regs > f32_regs);
        // Yr 2·2·2=8, Xr 2·2·2=8, Fr 2·2=4 → 20 + 24 = 44 for f32.
        assert_eq!(f32_regs, 44);
    }

    #[test]
    fn max_fused_matches_paper_examples() {
        // Figure 6: TK=128, P=4 → max 3 fused ( ⌊log4 128⌋ ).
        assert_eq!(max_fused(128, 4, 4), 3);
        // Figure 6 uses Nfused = 2 by choice; cap by remaining factors.
        assert_eq!(max_fused(128, 4, 2), 2);
        assert_eq!(max_fused(512, 8, 6), 3);
        assert_eq!(max_fused(8, 8, 6), 1);
        assert_eq!(max_fused(4, 8, 6), 1); // TK < P still runs one multiply
    }

    #[test]
    fn minimal_config_is_valid() {
        for &(m, k, p, q) in &[
            (1usize, 64usize, 8usize, 8usize),
            (16, 4096, 16, 16),
            (3, 50, 5, 2),
        ] {
            let c = TileConfig::minimal(m, k, p, q);
            c.validate(m, k, p, q)
                .unwrap_or_else(|e| panic!("minimal({m},{k},{p},{q}) invalid: {e}"));
        }
    }

    #[test]
    #[allow(clippy::identity_op)]
    fn launch_geometry() {
        let c = cfg(1, 512, 2, 4, 2, 2, 2);
        let l = c.launch(2, 512, 8, 8, DType::F32);
        assert_eq!(l.grid_blocks, 2 * 1 * 4);
        assert_eq!(l.threads_per_block, 32);
        let lf = c.launch_fused(2, 512, 8, DType::F32);
        assert_eq!(lf.grid_blocks, 2);
    }
}
