//! Autotuner walk-through: candidate enumeration, pruning, the chosen
//! tile configuration, and fused-vs-unfused planning for several shapes.
//!
//! Run with `cargo run --release --example autotune`.

use fastkron::kron::tuner::AutoTuner;
use fastkron::kron::FastKron;
use fastkron::prelude::*;
use kron_core::DType;

fn main() {
    let tuner = AutoTuner::new(&V100);
    for (m, p, n) in [(1024usize, 8usize, 5usize), (16, 64, 3), (20, 9, 3)] {
        let k = p.pow(n as u32);
        let out = tuner.tune(m, k, p, p, DType::F32).expect("tunable shape");
        println!("shape M={m}, {p}^{n} (K={k}):");
        println!(
            "  {} candidates generated, {} scored in {:.1} ms",
            out.report.generated,
            out.report.scored,
            out.report.tuning_seconds * 1e3
        );
        let c = out.config;
        println!(
            "  winner: TM={} TK={} TQ={} TP={} / RK={} RQ={} RP={} ({:?} caching)",
            c.tm, c.tk, c.tq, c.tp, c.rk, c.rq, c.rp, c.caching
        );
        println!("  estimated kernel time: {:.3} ms", out.est_seconds * 1e3);

        let problem = KronProblem::uniform(m, p, n).expect("valid");
        let plan = FastKron::plan::<f32>(&problem, &V100).expect("plan");
        let stages: Vec<String> = plan
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{}[{}]",
                    if s.fused { "fused" } else { "sliced" },
                    s.factor_indices.len()
                )
            })
            .collect();
        println!(
            "  plan: {} launches: {}\n",
            plan.launches(),
            stages.join(" → ")
        );
    }
}
