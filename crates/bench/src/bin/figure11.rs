//! Figure 11: weak scaling of FastKron, CTF, and DISTAL from 1 to 16
//! simulated GPUs (P = 64 and P = 128, N = 4, float).

use bench::{figure11_cases, figure11_gpu_counts};
use gpu_sim::device::V100;
use kron_core::KronProblem;
use kron_dist::{CtfEngine, DistFastKron, DistalEngine};

fn main() {
    println!("Figure 11 — weak scaling, achieved TFLOPS on 1..16 simulated V100s (float)");
    for (p, n, m_per_gpu) in figure11_cases() {
        println!("\nP = {p}, N = {n} (M per GPU = {m_per_gpu}):");
        println!(
            "{:>6} {:>8} {:>12} {:>10} {:>10}",
            "GPUs", "M", "FastKron", "CTF", "DISTAL"
        );
        for g in figure11_gpu_counts() {
            let m = m_per_gpu * g;
            let problem = KronProblem::uniform(m, p, n).expect("valid case");
            let tflops = problem.flops() as f64 / 1e12;
            let fk = DistFastKron::new(&V100, g)
                .and_then(|e| e.simulate::<f32>(&problem))
                .unwrap();
            let ctf = CtfEngine::new(&V100, g)
                .and_then(|e| e.simulate::<f32>(&problem))
                .unwrap();
            let distal = DistalEngine::new(&V100, g)
                .and_then(|e| e.simulate::<f32>(&problem))
                .unwrap();
            println!(
                "{:>6} {:>8} {:>12.1} {:>10.1} {:>10.1}",
                g,
                m,
                tflops / fk.seconds,
                tflops / ctf.seconds,
                tflops / distal.seconds
            );
        }
    }
    println!("\nPaper FastKron marks: P=64: 12/23/37/74/109; P=128: 13/26/50/99/173 TFLOPS");
    println!("Paper at 16 GPUs: FastKron 7.85x over CTF, 5.33x over DISTAL");
}
