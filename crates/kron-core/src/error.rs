//! Error type shared by every crate in the workspace.

use std::fmt;

/// Result alias using [`KronError`].
pub type Result<T> = std::result::Result<T, KronError>;

/// Errors produced while validating or executing a Kron-Matmul.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KronError {
    /// The input matrix's column count does not equal `∏ᵢ Pᵢ`.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it was given.
        found: String,
    },
    /// A problem was constructed with no factors.
    NoFactors,
    /// A factor (or the input) has a zero dimension.
    EmptyDimension {
        /// Description of the offending dimension.
        what: String,
    },
    /// A tile configuration violates a validity rule (§4.3 of the paper).
    InvalidTileConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A device-level resource limit (shared memory, registers) is exceeded.
    ResourceExhausted {
        /// Which resource and by how much.
        what: String,
    },
    /// Distributed execution was asked for an unsupported GPU-grid layout.
    InvalidGrid {
        /// Human-readable reason.
        reason: String,
    },
    /// A simulated device failed (panicked) during a sharded execution.
    /// The batch that was executing fails with this error; the engine and
    /// the fabric stay consistent, so later batches are unaffected.
    DeviceFailure {
        /// Linear id of the device that failed.
        gpu: usize,
        /// The captured panic message (or fault-injection label).
        reason: String,
    },
    /// A linked batch submission mixed requests against different models.
    /// Cross-request batching stacks inputs row-wise against one factor
    /// set, so every request of a linked batch must target the same model.
    MixedModelBatch {
        /// Model id of the batch's first request.
        first: u64,
        /// The first conflicting model id encountered.
        conflicting: u64,
    },
    /// A request's deadline had already passed when the scheduler picked
    /// it up, so it was shed without executing (admission control). Both
    /// timestamps are microseconds on the serving runtime's clock
    /// timeline.
    DeadlineExceeded {
        /// The deadline the request carried.
        deadline_us: u64,
        /// The scheduler's clock when it shed the request.
        now_us: u64,
    },
    /// A simulated device failed to report completion within the
    /// watchdog budget during a sharded execution — the bounded verdict
    /// for a hung (or injected slow) device. The batch's result must be
    /// discarded; the engine's fabric stays balanced, but the serving
    /// runtime evicts and rebuilds the entry like a
    /// [`KronError::DeviceFailure`].
    DeviceTimeout {
        /// Linear id of the device that missed the watchdog deadline.
        gpu: usize,
        /// How long the coordinator had waited when it gave up
        /// (microseconds on the owning runtime's clock).
        waited_us: u64,
    },
    /// A request was submitted to a serving runtime that has shut down.
    Shutdown,
    /// Building this model's execution state alone would exceed the plan
    /// cache's whole byte budget, so no amount of eviction could admit it
    /// — a configuration error (the budget is too small for the model),
    /// surfaced per request rather than silently blowing the bound.
    CacheBudgetExceeded {
        /// Estimated bytes the entry would hold resident.
        required_bytes: usize,
        /// The configured `CachePolicy::max_bytes` budget.
        max_bytes: usize,
    },
}

impl fmt::Display for KronError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KronError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            KronError::NoFactors => write!(f, "Kron-Matmul requires at least one factor"),
            KronError::EmptyDimension { what } => write!(f, "empty dimension: {what}"),
            KronError::InvalidTileConfig { reason } => {
                write!(f, "invalid tile configuration: {reason}")
            }
            KronError::ResourceExhausted { what } => write!(f, "resource exhausted: {what}"),
            KronError::InvalidGrid { reason } => write!(f, "invalid GPU grid: {reason}"),
            KronError::DeviceFailure { gpu, reason } => {
                write!(f, "simulated device {gpu} failed: {reason}")
            }
            KronError::MixedModelBatch { first, conflicting } => write!(
                f,
                "linked batch mixes models {first} and {conflicting}; \
                 a batch stacks rows against one factor set"
            ),
            KronError::DeadlineExceeded {
                deadline_us,
                now_us,
            } => write!(
                f,
                "deadline exceeded: due at {deadline_us}us, scheduled at {now_us}us"
            ),
            KronError::DeviceTimeout { gpu, waited_us } => write!(
                f,
                "simulated device {gpu} timed out: no completion after {waited_us}us (watchdog)"
            ),
            KronError::Shutdown => write!(f, "the serving runtime has shut down"),
            KronError::CacheBudgetExceeded {
                required_bytes,
                max_bytes,
            } => write!(
                f,
                "plan-cache byte budget exceeded: entry needs ~{required_bytes} bytes \
                 but the whole budget is {max_bytes} bytes"
            ),
        }
    }
}

impl std::error::Error for KronError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KronError::ShapeMismatch {
            expected: "M×64".into(),
            found: "M×63".into(),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected M×64, found M×63");
        assert_eq!(
            KronError::NoFactors.to_string(),
            "Kron-Matmul requires at least one factor"
        );
        assert!(KronError::InvalidTileConfig {
            reason: "TP must divide P".into()
        }
        .to_string()
        .contains("TP must divide P"));
        assert_eq!(
            KronError::DeviceFailure {
                gpu: 3,
                reason: "injected device fault".into()
            }
            .to_string(),
            "simulated device 3 failed: injected device fault"
        );
        let mixed = KronError::MixedModelBatch {
            first: 0,
            conflicting: 2,
        }
        .to_string();
        assert!(mixed.contains("models 0 and 2"), "{mixed}");
        let late = KronError::DeadlineExceeded {
            deadline_us: 500,
            now_us: 1200,
        }
        .to_string();
        assert!(late.contains("500us") && late.contains("1200us"), "{late}");
        let over = KronError::CacheBudgetExceeded {
            required_bytes: 4096,
            max_bytes: 1024,
        }
        .to_string();
        assert!(over.contains("4096") && over.contains("1024"), "{over}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&KronError::NoFactors);
    }
}
