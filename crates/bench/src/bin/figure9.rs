//! Figure 9: single-GPU TFLOPS of GPyTorch, COGENT, cuTensor,
//! FastKron-wo-Fuse, and FastKron for M = 1024 and the two largest `P^N`
//! per power-of-two P (float).

use bench::{figure9_cases, figure9_paper_tflops};
use gpu_sim::device::V100;
use kron_baselines::{CuTensorEngine, Engine, FastKronEngine, FtmmtEngine, ShuffleEngine};
use kron_core::KronProblem;

fn main() {
    println!("Figure 9 — Kron-Matmul of M=1024 and diverse P^N values (float, simulated V100)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "size", "GPyTorch", "COGENT", "cuTensor", "FK-wo-Fuse", "FastKron", "paper-FK"
    );
    let paper = figure9_paper_tflops();
    for ((p, n), paper_fk) in figure9_cases().into_iter().zip(paper) {
        let problem = KronProblem::uniform(1024, p, n).expect("valid case");
        let tflops = problem.flops() as f64 / 1e12;
        let run = |r: gpu_sim::ExecReport| tflops / r.seconds;
        let gp = run(Engine::<f32>::simulate(&ShuffleEngine::new(&V100), &problem).unwrap());
        let co = run(Engine::<f32>::simulate(&FtmmtEngine::new(&V100), &problem).unwrap());
        let cu = run(Engine::<f32>::simulate(&CuTensorEngine::new(&V100), &problem).unwrap());
        let fw =
            run(Engine::<f32>::simulate(&FastKronEngine::without_fusion(&V100), &problem).unwrap());
        let fk = run(Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem).unwrap());
        println!(
            "{:>5}^{:<2} {:>10.2} {:>10.2} {:>10.2} {:>12.2} {:>10.2} {:>12.1}",
            p, n, gp, co, cu, fw, fk, paper_fk
        );
    }
}
